//! Per-query profiling and benchmark regression experiments.
//!
//! `repro profile` drives every execution rung — CTJ under the
//! supervisor, the LFTJ baseline, both online estimators, and a parallel
//! Audit Join — inside one [`kgoa_obs::QueryProfile`] scope, then renders
//! the collected span tree three ways: an EXPLAIN ANALYZE-style annotated
//! plan tree, collapsed stacks in the `folded` flamegraph format, and a
//! self-validated `kgoa-obs/v2` JSON document.
//!
//! `repro regress` compares two `kgoa-bench/v1` documents (see
//! [`crate::telemetry::bench_json`]) experiment-by-experiment and fails —
//! nonzero exit in the CLI — when the candidate regressed beyond a
//! multiplicative tolerance. This is the CI gate that keeps the committed
//! `BENCH_PR*.json` snapshots honest.

use std::fmt::Write as _;
use std::time::Duration;

use kgoa_core::{
    run_parallel, run_walks, supervise, AuditJoin, AuditJoinConfig, Budget, ParallelAlgo,
    SupervisorConfig, WanderJoin,
};
use kgoa_engine::lftj_count;
use kgoa_obs::{Json, ProfileReport, QueryProfile};

use crate::telemetry::BENCH_SCHEMA;
use crate::workload::{select_walk_plan, BenchConfig, Dataset, PreparedQuery};

/// Walks per estimator in the profiled demonstration run.
const PROFILE_WALKS: u64 = 2048;

/// Operator families that must attribute nonzero work in the profile —
/// one per engine subsystem the tentpole instruments.
const OPERATOR_FAMILIES: &[&str] =
    &["engine.lftj.run", "lftj.v", "ctj.step", "wj.step", "aj.step", "parallel.worker"];

/// Derive the collapsed-stack output path from the JSON output path:
/// `profile.json` → `profile.folded` (or append `.folded` when the path
/// has no `.json` suffix).
pub fn folded_path_for(json_path: &str) -> String {
    match json_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.folded"),
        None => format!("{json_path}.folded"),
    }
}

/// `repro profile`: run the deepest workload query through every
/// execution rung under a single profile scope and render the span tree.
/// Self-validates the JSON rendering (parse + schema round-trip) and the
/// folded rendering (one `frame;frame value` per line), and asserts that
/// every operator family attributed nonzero work. `out` writes the JSON
/// there and the folded stacks next to it ([`folded_path_for`]).
pub fn profile_report(
    datasets: &[Dataset],
    workload: &[PreparedQuery],
    cfg: &BenchConfig,
    out: Option<&str>,
) -> String {
    let mut report = String::new();
    writeln!(report, "## Profiler — EXPLAIN ANALYZE span tree\n").unwrap();
    let Some(q) = workload.iter().max_by_key(|q| q.generated.step) else {
        return report;
    };
    let ig = &datasets[q.dataset].ig;
    let query = &q.generated.query;
    writeln!(report, "query: {}", q.id).unwrap();

    let aj_cfg = AuditJoinConfig {
        tipping: kgoa_core::Tipping::from_threshold(cfg.tipping_threshold),
        seed: cfg.seed,
    };
    let profile = QueryProfile::begin(q.id.clone());
    {
        let _attach = profile.attach("main");
        {
            // Exact rung: the supervisor's CTJ evaluation attributes
            // per-step cache traffic through the engine's profile hooks.
            let _s = kgoa_obs::profile::span("bench.supervise");
            let config = SupervisorConfig {
                deadline: Duration::from_secs(30),
                audit: aj_cfg,
                ..SupervisorConfig::default()
            };
            supervise(ig, query, &config).expect("supervise");
        }
        {
            // Worst-case-optimal baseline: per-variable seek/probe counts.
            let _s = kgoa_obs::profile::span("bench.lftj_count");
            lftj_count(ig, query).expect("lftj");
        }
        let plan = select_walk_plan(ig, query, cfg);
        {
            let _s = kgoa_obs::profile::span("bench.wander_join");
            let mut wj = WanderJoin::with_plan(ig, query, plan.clone(), cfg.seed).expect("wj");
            run_walks(&mut wj, PROFILE_WALKS);
            wj.profile_emit();
        }
        {
            let _s = kgoa_obs::profile::span("bench.audit_join");
            let mut aj = AuditJoin::with_plan(ig, query, plan.clone(), aj_cfg).expect("aj");
            run_walks(&mut aj, PROFILE_WALKS);
            aj.profile_emit();
        }
        {
            // Parallel workers attach to this profile from their own
            // threads, so the tree shows per-worker subtrees.
            let _s = kgoa_obs::profile::span("bench.parallel_audit_join");
            run_parallel(
                ig,
                query,
                &plan,
                ParallelAlgo::AuditJoin(aj_cfg),
                2,
                Budget::WalksPerWorker(PROFILE_WALKS / 2),
                cfg.seed,
            )
            .expect("parallel");
        }
    }
    let prof = profile.finish();

    writeln!(report, "\n{}", prof.to_text()).unwrap();

    // Attribution gate: every operator family must report self time or a
    // nonzero counter somewhere in the tree.
    for family in OPERATOR_FAMILIES {
        let attributed = prof.spans.iter().enumerate().any(|(i, n)| {
            n.name.starts_with(family)
                && (prof.self_ns(i) > 0 || n.counters.iter().any(|(_, v)| *v > 0))
        });
        assert!(attributed, "operator family {family} attributed no work");
    }

    // Folded rendering: must be well-formed collapsed stacks.
    let folded = prof.to_folded();
    let stack_lines =
        kgoa_obs::profile::check_folded(&folded).expect("folded output must be well-formed");

    // JSON rendering: must parse with the in-tree parser and round-trip
    // through the schema.
    let json = prof.to_json().pretty(2);
    let reparsed = Json::parse(&json).expect("profile JSON must be well-formed");
    let round = ProfileReport::from_json(&reparsed).expect("profile JSON must match schema");
    assert_eq!(round.spans.len(), prof.spans.len(), "profile JSON must round-trip");

    writeln!(report, "{} spans, {stack_lines} folded stack lines", prof.spans.len()).unwrap();

    if let Some(path) = out {
        std::fs::write(path, &json).expect("write profile JSON");
        let folded_path = folded_path_for(path);
        std::fs::write(&folded_path, &folded).expect("write folded stacks");
        writeln!(
            report,
            "wrote {path} ({} bytes) and {folded_path} ({} bytes)",
            json.len(),
            folded.len()
        )
        .unwrap();
    }
    report
}

/// `repro regress`: compare a candidate `kgoa-bench/v1` document against
/// a baseline. Per experiment present in *both* documents (keyed by
/// `query`), the gate fails — second tuple element `false` — when:
///
/// - `ctj_median_ns` grew beyond `baseline × tolerance`;
/// - an estimator's `walks_per_sec` fell below `baseline ÷ tolerance`;
/// - an estimator's `mae` grew beyond `baseline × tolerance` (skipped
///   when the baseline MAE is zero — nothing to be relative to).
///
/// Experiments present in only one document are reported and skipped.
/// An empty intersection is itself a failure: it means the two documents
/// describe different workloads and the comparison is vacuous.
pub fn regress(baseline_path: &str, candidate_path: &str, tolerance: f64) -> (String, bool) {
    let mut report = String::new();
    writeln!(report, "## Regression gate — {candidate_path} vs {baseline_path}\n").unwrap();
    if tolerance.is_nan() || tolerance < 1.0 {
        writeln!(report, "FAIL: tolerance must be ≥ 1.0, got {tolerance}").unwrap();
        return (report, false);
    }

    let load = |path: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == BENCH_SCHEMA => Ok(doc),
            other => Err(format!("{path}: expected schema {BENCH_SCHEMA}, found {other:?}")),
        }
    };
    let (base, cand) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for side in [b, c] {
                if let Err(e) = side {
                    writeln!(report, "FAIL: {e}").unwrap();
                }
            }
            return (report, false);
        }
    };

    let experiments = |doc: &Json| -> Vec<(String, Json)> {
        doc.get("experiments")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|e| {
                        e.get("query")
                            .and_then(Json::as_str)
                            .map(|id| (id.to_string(), e.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_exps = experiments(&base);
    let cand_exps = experiments(&cand);

    let mut failures = 0usize;
    let mut compared = 0usize;
    let num = |e: &Json, key: &str| e.get(key).and_then(Json::as_f64);

    for (id, be) in &base_exps {
        let Some((_, ce)) = cand_exps.iter().find(|(cid, _)| cid == id) else {
            writeln!(report, "{id:<28} only in baseline — skipped").unwrap();
            continue;
        };
        compared += 1;

        // Exact rung latency: higher is worse.
        if let (Some(b), Some(c)) = (num(be, "ctj_median_ns"), num(ce, "ctj_median_ns")) {
            let ok = c <= b * tolerance;
            failures += usize::from(!ok);
            writeln!(
                report,
                "{id:<28} ctj_median {:>9.2}ms → {:>9.2}ms  ratio {:>5.2}  {}",
                b / 1e6,
                c / 1e6,
                c / b,
                if ok { "ok" } else { "REGRESSED" }
            )
            .unwrap();
        }

        // Online rungs, matched by algorithm name.
        let algos = |e: &Json| -> Vec<Json> {
            e.get("online").and_then(Json::as_arr).map(<[Json]>::to_vec).unwrap_or_default()
        };
        for ba in algos(be) {
            let Some(name) = ba.get("algo").and_then(Json::as_str).map(str::to_string) else {
                continue;
            };
            let Some(ca) = algos(ce)
                .into_iter()
                .find(|a| a.get("algo").and_then(Json::as_str) == Some(&name))
            else {
                continue;
            };
            // Throughput: lower is worse.
            if let (Some(b), Some(c)) = (num(&ba, "walks_per_sec"), num(&ca, "walks_per_sec")) {
                let ok = c >= b / tolerance;
                failures += usize::from(!ok);
                writeln!(
                    report,
                    "{id:<28} {name} walks/s {:>10.0} → {:>10.0}  ratio {:>5.2}  {}",
                    b,
                    c,
                    c / b,
                    if ok { "ok" } else { "REGRESSED" }
                )
                .unwrap();
            }
            // Accuracy: higher is worse; a zero baseline has no scale.
            if let (Some(b), Some(c)) = (num(&ba, "mae"), num(&ca, "mae")) {
                if b > 0.0 {
                    let ok = c <= b * tolerance;
                    failures += usize::from(!ok);
                    writeln!(
                        report,
                        "{id:<28} {name} mae     {:>10.4} → {:>10.4}  ratio {:>5.2}  {}",
                        b,
                        c,
                        c / b,
                        if ok { "ok" } else { "REGRESSED" }
                    )
                    .unwrap();
                }
            }
        }
    }
    for (id, _) in &cand_exps {
        if !base_exps.iter().any(|(bid, _)| bid == id) {
            writeln!(report, "{id:<28} only in candidate — skipped").unwrap();
        }
    }

    let ok = failures == 0 && compared > 0;
    if compared == 0 {
        writeln!(report, "\nFAIL: no experiment appears in both documents").unwrap();
    } else {
        writeln!(
            report,
            "\n{} ({compared} experiments compared, tolerance {tolerance}×, {failures} regressions)",
            if ok { "PASS" } else { "FAIL" }
        )
        .unwrap();
    }
    (report, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::bench_json;
    use crate::workload::{load_datasets, prepare_workload};
    use kgoa_datagen::Scale;

    fn tiny() -> (Vec<Dataset>, Vec<PreparedQuery>, BenchConfig) {
        let cfg = BenchConfig {
            scale: Scale::Tiny,
            runs: 3,
            max_steps: 2,
            wj_order_trials: 0,
            ..BenchConfig::default()
        };
        let datasets = load_datasets(cfg.scale);
        let workload = prepare_workload(&datasets, &cfg);
        (datasets, workload, cfg)
    }

    #[test]
    fn folded_path_derivation() {
        assert_eq!(folded_path_for("profile.json"), "profile.folded");
        assert_eq!(folded_path_for("out/p.json"), "out/p.folded");
        assert_eq!(folded_path_for("profile"), "profile.folded");
    }

    #[test]
    fn profile_report_attributes_every_operator_family() {
        let (datasets, workload, cfg) = tiny();
        let dir = std::env::temp_dir().join("kgoa-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        // profile_report self-validates (panics on malformed renderings
        // or missing operator attribution).
        let r = profile_report(&datasets, &workload, &cfg, Some(path.to_str().unwrap()));
        assert!(r.contains("profile trace="));
        assert!(r.contains("folded stack lines"));
        let folded = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
        assert!(kgoa_obs::profile::check_folded(&folded).unwrap() > 0);
        let json = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&json).unwrap();
        assert!(ProfileReport::from_json(&doc).is_ok());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(dir.join("profile.folded")).ok();
    }

    #[test]
    fn regress_passes_on_identical_documents_and_fails_on_doctored() {
        let (datasets, workload, cfg) = tiny();
        let dir = std::env::temp_dir().join("kgoa-regress-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        bench_json(&datasets, &workload, &cfg, Some(base.to_str().unwrap()), 1);
        let base_s = base.to_str().unwrap();

        // Identical documents: no regression by construction.
        let (r, ok) = regress(base_s, base_s, 1.5);
        assert!(ok, "identical documents must pass:\n{r}");
        assert!(r.contains("PASS"));

        // Doctor the baseline: claim CTJ used to be 1000× faster and the
        // estimators 1000× more accurate — the candidate must now fail.
        let text = std::fs::read_to_string(&base).unwrap();
        let mut doc = Json::parse(&text).unwrap();
        fn doctor(j: &mut Json) {
            match j {
                Json::Obj(fields) => {
                    for (k, v) in fields.iter_mut() {
                        if k == "ctj_median_ns" || k == "mae" {
                            if let Json::Num(n) = v {
                                *n /= 1000.0;
                            }
                        } else {
                            doctor(v);
                        }
                    }
                }
                Json::Arr(items) => items.iter_mut().for_each(doctor),
                _ => {}
            }
        }
        doctor(&mut doc);
        let doctored = dir.join("doctored.json");
        std::fs::write(&doctored, doc.pretty(2)).unwrap();
        let (r, ok) = regress(doctored.to_str().unwrap(), base_s, 1.5);
        assert!(!ok, "doctored baseline must fail:\n{r}");
        assert!(r.contains("REGRESSED"));

        // Disjoint workloads: vacuous comparison is a failure, not a pass.
        let empty = dir.join("empty.json");
        std::fs::write(
            &empty,
            format!("{{\"schema\": \"{BENCH_SCHEMA}\", \"experiments\": []}}"),
        )
        .unwrap();
        let (r, ok) = regress(empty.to_str().unwrap(), base_s, 1.5);
        assert!(!ok);
        assert!(r.contains("no experiment appears in both"));

        // Unreadable input: a clean failure, not a panic.
        let (r, ok) = regress(dir.join("missing.json").to_str().unwrap(), base_s, 1.5);
        assert!(!ok);
        assert!(r.contains("cannot read"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
