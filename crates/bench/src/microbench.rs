//! A minimal micro-benchmark harness for the `benches/` targets.
//!
//! The container this workspace builds in has no crates.io access, so the
//! benches run on this self-contained harness instead of Criterion. It
//! keeps the essentials: warm-up, adaptive batching so the timer
//! resolution doesn't dominate, median-of-samples reporting, and a
//! substring filter from the command line (`cargo bench -- <filter>`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs named benchmark closures and prints a ns/iter table.
pub struct Runner {
    filter: Option<String>,
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
}

impl Runner {
    /// Build a runner from the process arguments: the first free argument
    /// (not a `--flag` or its value) is a substring filter. The
    /// `--bench`/`--exact` flags cargo passes are accepted and ignored.
    pub fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
                break;
            }
        }
        Runner {
            filter,
            warmup: Duration::from_millis(200),
            sample_target: Duration::from_millis(10),
            samples: 15,
        }
    }

    /// Use a shorter or longer measurement schedule (per-sample target
    /// duration stays at 10ms).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(3);
        self
    }

    /// Measure `f`, printing `name: <median> ns/iter (min <min>)`.
    /// Skipped (with a note) when a filter is set and doesn't match.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up and discover how many iterations fill a sample.
        let warm_start = Instant::now();
        let mut iters_per_sample = 1u64;
        while warm_start.elapsed() < self.warmup {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            let dt = t.elapsed();
            if dt < self.sample_target {
                // Grow geometrically toward the per-sample target.
                let grow = if dt.is_zero() {
                    16
                } else {
                    (self.sample_target.as_nanos() / dt.as_nanos().max(1)).clamp(2, 16) as u64
                };
                iters_per_sample = iters_per_sample.saturating_mul(grow).min(1 << 30);
            }
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        println!("{name:<40} {:>12} ns/iter   (min {})", fmt_ns(median), fmt_ns(min));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}
