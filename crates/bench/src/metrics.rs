//! Evaluation metrics: selectivity (§V-B) and Tukey box-plot statistics
//! (Figs. 9–10).

use kgoa_engine::{CtjEngine, CountEngine, EngineError};
use kgoa_index::IndexedGraph;
use kgoa_query::ExplorationQuery;

/// Five-number summary used for the paper's Tukey plots: the interquartile
/// box, the median, and whiskers at the most extreme values within 1.5×IQR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tukey {
    /// Lower whisker.
    pub lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker.
    pub hi: f64,
}

/// Compute Tukey statistics. NaN values are filtered out (they have no
/// order and would silently corrupt the sort); returns `None` for an
/// empty or all-NaN sample.
pub fn tukey(values: &[f64]) -> Option<Tukey> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        // Linear interpolation between closest ranks (type-7 quantile).
        let h = p * (v.len() as f64 - 1.0);
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    };
    let (q1, median, q3) = (q(0.25), q(0.5), q(0.75));
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let lo = v.iter().copied().find(|x| *x >= lo_fence).unwrap_or(v[0]);
    let hi = v
        .iter()
        .rev()
        .copied()
        .find(|x| *x <= hi_fence)
        .unwrap_or(v[v.len() - 1]);
    Some(Tukey { lo, q1, median, q3, hi })
}

/// Query selectivity per the paper's definition (§V-B):
/// `1 − (join size including filters) / (join size without filters)`,
/// computed per group (each group's filter pins α) and averaged.
pub fn selectivity(ig: &IndexedGraph, query: &ExplorationQuery) -> Result<f64, EngineError> {
    let unfiltered = query.strip_filters().with_distinct(false);
    let total = kgoa_engine::ctj_count(ig, &unfiltered)? as f64;
    if total == 0.0 {
        return Ok(0.0);
    }
    let per_group = CtjEngine.evaluate(ig, &query.with_distinct(false))?;
    if per_group.is_empty() {
        return Ok(1.0);
    }
    let mut acc = 0.0;
    for (_, c) in per_group.iter() {
        acc += 1.0 - (c as f64 / total).min(1.0);
    }
    Ok(acc / per_group.len() as f64)
}

/// Format a duration in a compact human unit.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1}min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Format a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tukey_of_known_sample() {
        let vals = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let t = tukey(&vals).unwrap();
        assert_eq!(t.median, 3.0);
        assert_eq!(t.q1, 2.0);
        assert_eq!(t.q3, 4.0);
        assert_eq!(t.lo, 1.0);
        assert_eq!(t.hi, 5.0);
    }

    #[test]
    fn tukey_whiskers_exclude_outliers() {
        let vals = vec![1.0, 2.0, 2.5, 3.0, 100.0];
        let t = tukey(&vals).unwrap();
        assert!(t.hi < 100.0, "outlier must be outside the whisker: {t:?}");
    }

    #[test]
    fn tukey_empty_is_none() {
        assert!(tukey(&[]).is_none());
    }

    #[test]
    fn tukey_singleton() {
        let t = tukey(&[7.0]).unwrap();
        assert_eq!(t.median, 7.0);
        assert_eq!(t.lo, 7.0);
        assert_eq!(t.hi, 7.0);
    }

    #[test]
    fn tukey_all_equal_collapses() {
        let t = tukey(&[4.0; 8]).unwrap();
        assert_eq!(t, Tukey { lo: 4.0, q1: 4.0, median: 4.0, q3: 4.0, hi: 4.0 });
    }

    #[test]
    fn tukey_filters_nan() {
        // NaNs must not poison the sort order or the quantiles: the result
        // equals the NaN-free computation.
        let with_nan = [f64::NAN, 1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0, f64::NAN];
        let t = tukey(&with_nan).unwrap();
        let clean = tukey(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(t, clean);
        assert!(!t.median.is_nan() && !t.lo.is_nan() && !t.hi.is_nan());
    }

    #[test]
    fn tukey_all_nan_is_none() {
        assert!(tukey(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn tukey_handles_infinities() {
        // total_cmp orders ±inf correctly; they are legitimate values.
        let t = tukey(&[f64::NEG_INFINITY, 1.0, 2.0, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(t.median, 2.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_pct(0.123), "12.3%");
        assert!(fmt_duration(std::time::Duration::from_micros(3)).contains("µs"));
        assert!(fmt_duration(std::time::Duration::from_millis(3)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(3)).contains('s'));
        assert!(fmt_duration(std::time::Duration::from_secs(120)).contains("min"));
    }

    #[test]
    fn selectivity_of_filtered_query() {
        use kgoa_query::{TriplePattern, Var};
        use kgoa_rdf::{GraphBuilder, Triple};
        // 4 p-edges, 1 q-edge: unfiltered 2-step join over variable
        // predicates is larger than the filtered one.
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let a = b.dict_mut().intern_iri("u:a");
        let x = b.dict_mut().intern_iri("u:x");
        let y = b.dict_mut().intern_iri("u:y");
        let c = b.dict_mut().intern_iri("u:c");
        for t in [
            Triple::new(a, p, x),
            Triple::new(a, p, y),
            Triple::new(x, q, c),
            Triple::new(y, q, c),
        ] {
            b.add(t);
        }
        let ig = IndexedGraph::build(b.build());
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            true,
        )
        .unwrap();
        let sel = selectivity(&ig, &query).unwrap();
        assert!((0.0..=1.0).contains(&sel));
        // Filtered join = 2 paths; unfiltered (?0 ?p1 ?1)(?1 ?p2 ?2): paths
        // a->x->c, a->y->c only as well... plus none others ⇒ selectivity 0.
        // Group c has count 2, total 2 ⇒ sel = 0.
        assert!(sel.abs() < 1e-12, "sel = {sel}");
    }
}
