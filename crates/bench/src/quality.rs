//! `repro quality` — the estimator-quality plane, gated end to end.
//!
//! Brings up the PR 8 stack against a live epoch-managed workload and
//! gates on the acceptance criteria:
//!
//! 1. **CI honesty** — every degraded chart is offered to the background
//!    [`CoverageAuditor`] (sampling 1:1 here), which recomputes exact
//!    truth on the pinned epoch; the resulting empirical coverage must be
//!    at least the nominal level minus a small slack `ε`.
//! 2. **Convergence telemetry** — a streaming parallel run under the
//!    armed quality plane must produce per-`(engine, rung)` convergence
//!    summaries, exported both through `/quality` (JSON) and `/metrics`
//!    (labeled Prometheus series).
//! 3. **Stats-drift trip** (`--features fault-inject`) — an injected
//!    staleness scenario (a merge delivering a burst of dead-end
//!    entities) must move per-predicate rejection rates enough across
//!    epochs to fire the deterministic `stats_drift` watchdog rule and
//!    flip `/healthz`, with the rule named in the body.
//!
//! The HTTP side reuses the same zero-dependency `std::net` client as
//! `repro monitor`.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kgoa_core::{
    install_auditor, run_parallel_streaming, start_monitoring, uninstall_auditor,
    AuditJoinConfig, AuditorConfig, Budget, EpochConfig, EpochManager, MonitorConfig,
    ParallelAlgo, StreamConfig, SupervisorConfig,
};
use kgoa_datagen::{generate, KgConfig};
#[cfg(feature = "fault-inject")]
use kgoa_engine::ExecBudget;
use kgoa_explore::{Expansion, Session};
use kgoa_index::IndexOrder;
#[cfg(feature = "fault-inject")]
use kgoa_index::UpdateBatch;
use kgoa_obs::{Json, ObsServer, QualityPolicy, RecorderConfig, WatchdogConfig};
use kgoa_query::WalkPlan;
use kgoa_rdf::Triple;

use crate::workload::BenchConfig;

/// Slack below the nominal coverage the empirical gate tolerates. The
/// audit runs on a small seeded workload, so the binomial noise floor is
/// a few percent; a plane whose honesty drifts past this is broken, not
/// unlucky.
const COVERAGE_EPSILON: f64 = 0.10;

/// One blocking GET against the scrape listener; returns status + body.
fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: kgoa\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) =
        text.split_once("\r\n\r\n").ok_or_else(|| format!("no header/body split: {text:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {head:?}"))?;
    Ok((status, body.to_string()))
}

/// Run a round of forced-degradation governed expansions on the pinned
/// session, waiting out each offered audit so the round's coverage is
/// fully accounted before returning.
fn degraded_round(
    session: &mut Session<'_>,
    sup: &SupervisorConfig,
    auditor: &kgoa_core::CoverageAuditor,
    rounds: usize,
) -> usize {
    let mut degraded = 0;
    for _ in 0..rounds {
        for exp in [Expansion::OutProperty, Expansion::InProperty] {
            let chart = session.expand_governed(exp, sup).expect("governed expansion");
            degraded += usize::from(chart.provenance.is_some());
            let deadline = Instant::now() + Duration::from_secs(20);
            while !auditor.idle() {
                assert!(Instant::now() < deadline, "audit never drained");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    degraded
}

/// `repro quality`: returns the report and whether every gate passed.
pub fn quality_bench(cfg: &BenchConfig) -> (String, bool) {
    let mut report = String::new();
    writeln!(report, "## Quality — estimator-quality plane gated end to end\n").unwrap();
    let mut all_ok = true;
    let mut gate = |report: &mut String, name: &str, ok: bool, detail: String| {
        all_ok &= ok;
        writeln!(report, "{:<28} {:<4} {}", name, if ok { "ok" } else { "FAIL" }, detail)
            .unwrap();
        ok
    };

    kgoa_obs::reset();
    kgoa_obs::set_enabled(true);
    let policy = QualityPolicy::default();
    kgoa_obs::quality::arm(policy.clone());

    // Watchdog thresholds for the drill: the coverage alarm sits *below*
    // this gate's own coverage assertion (nominal − ε), so a passing run
    // never trips it, and the heartbeat is generous for loaded CI hosts.
    let watchdog = WatchdogConfig {
        coverage_min_bp: ((policy.nominal_coverage - 2.0 * COVERAGE_EPSILON) * 10_000.0) as i64,
        coverage_min_audits: 3,
        drift_limit_bp: policy.drift_limit_bp,
        heartbeat_gap: Duration::from_secs(10),
        ..WatchdogConfig::default()
    };
    let mut monitor = start_monitoring(MonitorConfig {
        recorder: RecorderConfig { tick: Duration::from_millis(25), capacity: 256 },
        watchdog: watchdog.clone(),
    });
    let mut server = ObsServer::start_with("127.0.0.1:0", watchdog).expect("bind listener");
    let addr = server.local_addr();
    writeln!(report, "listener: http://{addr}\n").unwrap();

    // Live workload: epoch-managed graph with a pre-interned staleness
    // burst (entities typed into C0 with no other edges — pure dead ends
    // for property walks).
    let graph = generate(&KgConfig::dbpedia_like(cfg.scale));
    let mut dict = graph.dict().clone();
    let vocab = graph.vocab();
    let original = graph.triples().to_vec();
    let class = dict
        .lookup_iri("http://kgoa.dev/class/C0")
        .expect("generated graphs always have class C0");
    let burst: Vec<Triple> = (0..2048)
        .map(|i| {
            let e = dict.intern_iri(format!("http://kgoa.dev/quality/dead{i}"));
            Triple::new(e, vocab.rdf_type, class)
        })
        .collect();
    let graph = kgoa_rdf::Graph::from_sorted_parts(dict, original, vocab);
    let ig = kgoa_index::IndexedGraph::build(graph);
    // High thresholds keep `merge_now` the only merger (deterministic).
    let mgr = EpochManager::new(
        ig,
        EpochConfig { merge_threshold: 1 << 20, shed_threshold: 1 << 20, ..EpochConfig::default() },
    );
    let auditor = install_auditor(
        Arc::clone(&mgr),
        AuditorConfig {
            sample_every: 1,
            budget: Duration::from_secs(2),
            exact_parts: 1,
        },
    );

    // Forced degradation: a zero exact slice sends every expansion down
    // the Audit Join rung, so each chart carries CIs to audit.
    let sup = SupervisorConfig {
        deadline: Duration::from_millis(80),
        exact_fraction: 0.0,
        audit: AuditJoinConfig {
            tipping: kgoa_core::Tipping::from_threshold(cfg.tipping_threshold),
            seed: cfg.seed,
        },
        ..SupervisorConfig::default()
    };
    let mut session = Session::root_pinned(&mgr);
    let degraded = degraded_round(&mut session, &sup, &auditor, 3);

    // Gate 1: the auditor saw the charts and empirical coverage holds.
    gate(
        &mut report,
        "audits ran",
        auditor.offered() as usize >= degraded && kgoa_obs::metrics::QUALITY_AUDITS.get() > 0,
        format!(
            "{} charts degraded, {} offered, {} audited, {} skipped",
            degraded,
            auditor.offered(),
            kgoa_obs::metrics::QUALITY_AUDITS.get(),
            kgoa_obs::metrics::QUALITY_AUDIT_SKIPPED.get()
        ),
    );
    match kgoa_obs::quality::coverage() {
        Some((covered, audited)) => {
            let coverage = covered as f64 / audited as f64;
            gate(
                &mut report,
                "empirical coverage",
                coverage >= policy.nominal_coverage - COVERAGE_EPSILON,
                format!(
                    "{covered}/{audited} = {:.1}% (nominal {:.0}%, ε {:.0}pp)",
                    coverage * 100.0,
                    policy.nominal_coverage * 100.0,
                    COVERAGE_EPSILON * 100.0
                ),
            );
        }
        None => {
            gate(&mut report, "empirical coverage", false, "no audits completed".into());
        }
    }

    // Gate 2: a streaming parallel run feeds the convergence rings.
    {
        let pinned = mgr.pin();
        let mut probe = Session::root(&pinned);
        let query = probe.expansion_query(Expansion::OutProperty).expect("probe query");
        let plan = WalkPlan::canonical(&query, &IndexOrder::PAPER_DEFAULT).expect("probe plan");
        let out = run_parallel_streaming(
            &pinned,
            &query,
            &plan,
            ParallelAlgo::AuditJoin(AuditJoinConfig {
                tipping: kgoa_core::Tipping::from_threshold(cfg.tipping_threshold),
                seed: cfg.seed,
            }),
            2,
            Budget::WalksPerWorker(2048),
            cfg.seed,
            StreamConfig { batch: cfg.batch.max(1), refresh: Duration::from_millis(5) },
            |_| {},
        );
        let summaries = kgoa_obs::quality::convergence_summary();
        gate(
            &mut report,
            "convergence telemetry",
            out.is_ok() && summaries.iter().any(|s| s.engine == "parallel"),
            format!(
                "{} (engine, rung) keys: {:?}",
                summaries.len(),
                summaries.iter().map(|s| format!("{}/{}", s.engine, s.rung)).collect::<Vec<_>>()
            ),
        );
    }

    // Gate 3: /quality serves the summary JSON with its schema.
    match http_get(addr, "/quality") {
        Ok((status, body)) => {
            let parsed = Json::parse(&body).ok();
            let schema = parsed
                .as_ref()
                .and_then(|j| j.get("schema").and_then(Json::as_str))
                .unwrap_or("")
                .to_string();
            let has_sections = parsed
                .as_ref()
                .is_some_and(|j| j.get("coverage").is_some() && j.get("convergence").is_some());
            gate(
                &mut report,
                "/quality schema",
                status == 200 && schema == kgoa_obs::QUALITY_SCHEMA && has_sections,
                format!("HTTP {status}, {schema}"),
            );
        }
        Err(e) => {
            gate(&mut report, "/quality schema", false, e);
        }
    }

    // Gate 4: /metrics carries the labeled quality series and the
    // coverage gauge.
    match http_get(addr, "/metrics") {
        Ok((status, body)) => {
            gate(
                &mut report,
                "/metrics quality series",
                status == 200
                    && body.contains("kgoa_quality_runs_total{engine=\"parallel\"")
                    && body.contains("kgoa_obs_quality_coverage_bp"),
                "labeled convergence series + coverage gauge exported".into(),
            );
        }
        Err(e) => {
            gate(&mut report, "/metrics quality series", false, e);
        }
    }

    // Gate 5: /healthz is healthy before the staleness injection...
    let rec = kgoa_obs::Recorder::global().expect("monitoring installed the recorder");
    rec.sample_now();
    match http_get(addr, "/healthz") {
        Ok((status, body)) => {
            gate(
                &mut report,
                "/healthz baseline",
                status == 200 && body.contains("\"status\": \"healthy\""),
                format!(
                    "HTTP {status}, {}",
                    body.lines().find(|l| l.contains("status")).unwrap_or("?").trim()
                ),
            );
        }
        Err(e) => {
            gate(&mut report, "/healthz baseline", false, e);
        }
    }

    // ...and the injected stats-staleness scenario trips `stats_drift`.
    #[cfg(feature = "fault-inject")]
    {
        // The burst merges in a flood of dead-end C0 members: property
        // walks over the new epoch reject far more often, while the drift
        // baseline still holds the old epoch's rates.
        mgr.append(&UpdateBatch::inserting(burst.clone()), &ExecBudget::unlimited())
            .expect("burst append");
        mgr.merge_now();
        mgr.wait_merged();
        session.repin(&mgr);
        degraded_round(&mut session, &sup, &auditor, 3);
        let drift_bp = kgoa_obs::metrics::QUALITY_STATS_DRIFT_BP.get();
        rec.sample_now();
        match http_get(addr, "/healthz") {
            Ok((status, body)) => {
                let tripped =
                    body.contains("\"status\": \"degraded\"") && body.contains("stats_drift");
                gate(
                    &mut report,
                    "stats-drift trip",
                    status == 200 && tripped,
                    format!("HTTP {status}, max drift {drift_bp}bp"),
                );
            }
            Err(e) => {
                gate(&mut report, "stats-drift trip", false, e);
            }
        }
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        let _ = &burst;
        writeln!(
            report,
            "{:<28} {:<4} needs --features fault-inject",
            "stats-drift trip", "skip"
        )
        .unwrap();
    }

    uninstall_auditor();
    kgoa_obs::quality::disarm();
    server.stop();
    monitor.stop();
    kgoa_obs::set_enabled(false);
    writeln!(
        report,
        "\n{}",
        if all_ok { "quality gate PASSED" } else { "quality gate FAILED" }
    )
    .unwrap();
    (report, all_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgoa_datagen::Scale;

    #[test]
    fn quality_bench_passes_on_tiny_scale() {
        let _guard = kgoa_obs::metrics::test_lock();
        kgoa_obs::events::set_stderr_level(None);
        let cfg = BenchConfig { scale: Scale::Tiny, ..BenchConfig::default() };
        let (report, ok) = quality_bench(&cfg);
        kgoa_obs::events::set_stderr_level(Some(kgoa_obs::Level::Warn));
        assert!(ok, "quality gates must pass:\n{report}");
        assert!(report.contains("empirical coverage"));
    }
}
