//! A leveled, ring-buffered structured event log.
//!
//! This replaces the workspace's ad-hoc `eprintln!` diagnostics: code
//! emits an [`Event`] (level + target + message + key/value fields),
//! the last [`RING_CAPACITY`] events are retained for snapshots, and
//! events at or above the stderr threshold (default [`Level::Warn`],
//! overridable with the `KGOA_LOG` environment variable) are also
//! printed — so the pre-telemetry behaviour of a panicked worker
//! writing one warning line to stderr is preserved verbatim.
//!
//! Unlike metrics, the event log is **not** gated on
//! [`crate::enabled`]: events are rare (fallbacks, degradations,
//! panics) and losing them when telemetry is off would regress the
//! diagnostics the `eprintln!`s used to provide.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, Once};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-worker stats and the like).
    Debug,
    /// Normal lifecycle events (rung transitions, traces).
    Info,
    /// Something degraded but the request was still served.
    Warn,
    /// A request failed outright.
    Error,
}

impl Level {
    /// Lowercase name for rendering ("debug", "info", ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// One structured log record.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number (process-wide, never reused).
    pub seq: u64,
    /// Microseconds since [`crate::epoch`].
    pub elapsed_us: u64,
    /// Severity.
    pub level: Level,
    /// Emitting component, e.g. `"supervisor"` or `"parallel"`.
    pub target: &'static str,
    /// Innermost active [`crate::Span`] name, if any.
    pub span: Option<&'static str>,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value payload.
    pub fields: Vec<(&'static str, String)>,
}

/// Ring capacity: the most recent events kept for snapshots. Old events
/// are dropped (and counted) rather than blocking or growing unbounded.
pub const RING_CAPACITY: usize = 512;

struct Ring {
    buf: VecDeque<Event>,
    seq: u64,
    dropped: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring { buf: VecDeque::new(), seq: 0, dropped: 0 });

/// Stderr threshold encoding: level as u8, 255 = never print.
static STDERR_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// One-time `KGOA_LOG` environment lookup. Guarded by a `Once` so an
/// explicit [`set_stderr_level`] call always wins regardless of whether
/// it runs before or after the first emit: both paths force the env
/// read first, and the env value is applied at most once.
static ENV_INIT: Once = Once::new();

fn init_from_env() {
    // Init-order caveat: the unrecognised-value warning cannot be
    // emitted from inside the `call_once` closure — `emit_with` calls
    // back into `init_from_env`, and re-entering an in-flight `Once`
    // deadlocks. So the closure only captures the bad value; the event
    // is emitted after `call_once` returns, when the `Once` is complete
    // and the nested `init_from_env` is a no-op.
    let mut unrecognised = None;
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("KGOA_LOG") {
            match parse_stderr_level(&v) {
                Some(level) => STDERR_LEVEL.store(encode(level), Ordering::Relaxed),
                None => unrecognised = Some(v),
            }
        }
    });
    if let Some(v) = unrecognised {
        warn_unrecognised(&v);
    }
}

/// Report an unrecognised `KGOA_LOG` value through the structured event
/// ring (which also routes it to stderr at the default Warn threshold,
/// preserving the old raw `eprintln!` visibility).
fn warn_unrecognised(value: &str) {
    emit_with(
        Level::Warn,
        "events",
        "ignoring unrecognised KGOA_LOG value",
        vec![("value", format!("{value:?}"))],
    );
}

/// Parse a `KGOA_LOG` value: a [`Level`] name routes that level and
/// above to stderr, `off`/`none`/`silent` silences stderr
/// (`Some(None)`), anything else is unrecognised (`None`).
pub fn parse_stderr_level(value: &str) -> Option<Option<Level>> {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "silent" => Some(None),
        other => Level::parse(other).map(Some),
    }
}

fn encode(level: Option<Level>) -> u8 {
    level.map_or(255, |l| l as u8)
}

/// Route events at or above `level` to stderr (`None` silences stderr
/// entirely — used by benchmarks and tests). The default is
/// [`Level::Warn`] — which preserves the visibility the old
/// `eprintln!` calls had — overridable at startup with the `KGOA_LOG`
/// environment variable (`error`/`warn`/`info`/`debug`/`off`). An
/// explicit call to this function always beats the environment.
pub fn set_stderr_level(level: Option<Level>) {
    ENV_INIT.call_once(|| {}); // consume the env slot: explicit wins
    STDERR_LEVEL.store(encode(level), Ordering::Relaxed);
}

fn ring() -> std::sync::MutexGuard<'static, Ring> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

/// Emit an event with structured fields.
pub fn emit_with(
    level: Level,
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, String)>,
) {
    let event = Event {
        seq: 0, // assigned under the lock
        elapsed_us: crate::elapsed_us(),
        level,
        target,
        span: crate::span::current(),
        message: message.into(),
        fields,
    };
    init_from_env();
    if level as u8 >= STDERR_LEVEL.load(Ordering::Relaxed) {
        let kv: Vec<String> =
            event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let suffix = if kv.is_empty() { String::new() } else { format!(" ({})", kv.join(", ")) };
        eprintln!("kgoa[{}] {}: {}{}", level.as_str(), target, event.message, suffix);
    }
    let mut r = ring();
    let mut event = event;
    event.seq = r.seq;
    r.seq += 1;
    if r.buf.len() == RING_CAPACITY {
        r.buf.pop_front();
        r.dropped += 1;
    }
    r.buf.push_back(event);
}

/// Emit an event with no fields.
pub fn emit(level: Level, target: &'static str, message: impl Into<String>) {
    emit_with(level, target, message, Vec::new());
}

/// Emit at [`Level::Debug`].
pub fn debug(target: &'static str, message: impl Into<String>) {
    emit(Level::Debug, target, message);
}

/// Emit at [`Level::Info`].
pub fn info(target: &'static str, message: impl Into<String>) {
    emit(Level::Info, target, message);
}

/// Emit at [`Level::Warn`].
pub fn warn(target: &'static str, message: impl Into<String>) {
    emit(Level::Warn, target, message);
}

/// Emit at [`Level::Error`].
pub fn error(target: &'static str, message: impl Into<String>) {
    emit(Level::Error, target, message);
}

/// Snapshot of the retained events, oldest first.
pub fn recent() -> Vec<Event> {
    ring().buf.iter().cloned().collect()
}

/// How many events were evicted from the ring so far.
pub fn dropped() -> u64 {
    ring().dropped
}

/// Clear the ring and the dropped count (sequence numbers keep going).
pub fn clear() {
    let mut r = ring();
    r.buf.clear();
    r.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_and_evicts() {
        let _guard = crate::metrics::test_lock();
        clear();
        set_stderr_level(None);
        for i in 0..(RING_CAPACITY + 10) {
            emit_with(
                Level::Debug,
                "test",
                format!("event {i}"),
                vec![("i", i.to_string())],
            );
        }
        let events = recent();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(dropped(), 10);
        // Oldest retained is #10; sequence numbers are consecutive.
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(events.last().unwrap().fields[0].1, (RING_CAPACITY + 9).to_string());
        clear();
        assert!(recent().is_empty());
        assert_eq!(dropped(), 0);
        set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn kgoa_log_values_parse() {
        assert_eq!(parse_stderr_level("debug"), Some(Some(Level::Debug)));
        assert_eq!(parse_stderr_level("INFO"), Some(Some(Level::Info)));
        assert_eq!(parse_stderr_level(" warn "), Some(Some(Level::Warn)));
        assert_eq!(parse_stderr_level("warning"), Some(Some(Level::Warn)));
        assert_eq!(parse_stderr_level("error"), Some(Some(Level::Error)));
        assert_eq!(parse_stderr_level("off"), Some(None));
        assert_eq!(parse_stderr_level("none"), Some(None));
        assert_eq!(parse_stderr_level("verbose"), None);
        assert_eq!(parse_stderr_level(""), None);
        assert_eq!(Level::parse("Error"), Some(Level::Error));
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn explicit_stderr_level_beats_environment() {
        let _guard = crate::metrics::test_lock();
        // After an explicit set, the env slot is consumed: emitting
        // must not re-apply KGOA_LOG over the explicit choice.
        set_stderr_level(None);
        emit(Level::Error, "test", "silenced");
        assert_eq!(STDERR_LEVEL.load(Ordering::Relaxed), 255);
        set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn kgoa_log_off_fully_silences_stderr() {
        let _guard = crate::metrics::test_lock();
        // `KGOA_LOG=off` parses to `Some(None)`, which encodes to the
        // never-print threshold (255): no level can reach it, so stderr
        // routing is fully silenced...
        let parsed = parse_stderr_level("off").expect("off is recognised");
        assert_eq!(encode(parsed), 255);
        set_stderr_level(parsed);
        assert_eq!(STDERR_LEVEL.load(Ordering::Relaxed), 255);
        assert!((Level::Error as u8) < 255);
        // ...but the ring still retains the event: `off` only affects
        // the stderr side-channel, never the structured log.
        clear();
        emit(Level::Error, "test", "ring survives off");
        let events = recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "ring survives off");
        clear();
        set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn unrecognised_kgoa_log_lands_in_ring() {
        let _guard = crate::metrics::test_lock();
        // ENV_INIT has usually fired by the time this test runs, so
        // exercise the reporting helper directly: the bad value must
        // come through the structured ring as a Warn, not a raw
        // eprintln! that snapshots would miss.
        set_stderr_level(None);
        clear();
        warn_unrecognised("verbose");
        let events = recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].level, Level::Warn);
        assert_eq!(events[0].target, "events");
        assert_eq!(events[0].fields, vec![("value", "\"verbose\"".to_string())]);
        clear();
        set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Error.as_str(), "error");
    }
}
