//! Stall watchdog: rule evaluation over the recorder's windows.
//!
//! The failure modes that matter for a long-running exploration service
//! are not crashes (the pool already contains panics) but *stalls*:
//! a merge that keeps retrying, a worker queue that stops draining, an
//! ingest storm that sheds every exact query, a sampler that silently
//! died. Each rule reads the [`Recorder`]'s windowed deltas — rates and
//! plateaus, not lifetime totals — and contributes an [`Alert`]; the
//! overall [`Verdict`] is the worst severity and is what `/healthz`
//! serves.
//!
//! Rules (all thresholds in [`WatchdogConfig`]):
//!
//! - **merge-retry storm** — the sum of `index.merge.retried` deltas
//!   over the last `merge_retry_windows` windows reaches
//!   `merge_retry_limit`: the background merge is thrashing
//!   (*degraded*). Provable deterministically under `fault-inject` by
//!   arming `MergeCrashPoint::PrePublish` in a loop.
//! - **queue plateau** — `core.pool.queue_depth` has been ≥
//!   `queue_plateau_min` and non-decreasing for
//!   `queue_plateau_windows` consecutive windows: the pool has more
//!   work than it drains (*degraded*).
//! - **ingest pressure** — `supervisor.shed.ingest_pressure` advanced
//!   in each of the last `pressure_windows` windows: every evaluation
//!   interval is shedding exact queries (*degraded*).
//! - **heartbeat** — the newest window closed more than
//!   `heartbeat_gap` ago: the sampler itself stalled, so nothing else
//!   can be trusted (*unhealthy*).
//! - **coverage below nominal** — the quality plane's empirical-CI
//!   coverage gauge (`obs.quality.coverage_bp`) in the newest window is
//!   under `coverage_min_bp` after at least `coverage_min_audits`
//!   audited groups: the intervals we serve are not honest (*degraded*).
//! - **stats drift** — `obs.quality.stats_drift_bp` in the newest
//!   window reaches `drift_limit_bp`: post-merge walk rejection/tip
//!   rates stepped away from the previous epoch, so the stats behind
//!   walk orders and tipping thresholds are stale (*degraded*).
//!   Provable deterministically under `fault-inject` by merging a
//!   skewed delta batch (see `repro quality`).
//!
//! With **zero** windows the verdict is healthy: the recorder has not
//! started, and alarming on "no data yet" would page on every boot.

use std::time::Duration;

use crate::events::{self, Level};
use crate::json::Json;
use crate::metrics;
use crate::recorder::{Recorder, Window};

/// Rule thresholds. Defaults are sized for the default 250 ms recorder
/// tick: 8 windows ≈ 2 s of history per rule.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Merge retries summed over the storm horizon that trip the rule.
    pub merge_retry_limit: u64,
    /// Storm horizon, in windows.
    pub merge_retry_windows: usize,
    /// Queue depth at or above this level counts toward a plateau.
    pub queue_plateau_min: i64,
    /// Consecutive non-decreasing windows that make a plateau.
    pub queue_plateau_windows: usize,
    /// Consecutive windows with shedding that trip the pressure rule.
    pub pressure_windows: usize,
    /// Maximum age of the newest window before the sampler itself is
    /// declared dead.
    pub heartbeat_gap: Duration,
    /// Empirical CI coverage (basis points) below which the coverage
    /// rule fires.
    pub coverage_min_bp: i64,
    /// Audited groups required before the coverage rule may fire — a
    /// couple of unlucky early audits must not page.
    pub coverage_min_audits: i64,
    /// Per-predicate walk-rate delta (basis points) at which the
    /// stats-drift rule fires.
    pub drift_limit_bp: i64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            merge_retry_limit: 3,
            merge_retry_windows: 8,
            queue_plateau_min: 1,
            queue_plateau_windows: 8,
            pressure_windows: 8,
            heartbeat_gap: Duration::from_secs(2),
            coverage_min_bp: 9_000,
            coverage_min_audits: 5,
            drift_limit_bp: 1_500,
        }
    }
}

/// Overall health, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// All rules quiet.
    Healthy,
    /// Serving, but a stall precursor fired.
    Degraded,
    /// The observability plane itself cannot be trusted.
    Unhealthy,
}

impl Verdict {
    /// Lowercase name ("healthy", "degraded", "unhealthy").
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Degraded => "degraded",
            Verdict::Unhealthy => "unhealthy",
        }
    }
}

/// One fired rule.
#[derive(Debug, Clone)]
pub struct Alert {
    /// Stable rule name ("merge_retry_storm", "queue_plateau",
    /// "ingest_pressure", "heartbeat", "coverage_below_nominal",
    /// "stats_drift").
    pub rule: &'static str,
    /// Severity this rule contributes.
    pub severity: Verdict,
    /// Human-readable cause with the measured value.
    pub message: String,
}

/// Result of one evaluation pass.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst severity across fired rules (healthy when none fired).
    pub verdict: Verdict,
    /// Fired rules, in rule order.
    pub alerts: Vec<Alert>,
    /// Windows that were available to the rules.
    pub windows: usize,
}

impl HealthReport {
    /// Names of every fired rule, in rule order — the quick "what is
    /// degraded" list for `/healthz` consumers that don't parse alerts.
    pub fn rules(&self) -> Vec<&'static str> {
        self.alerts.iter().map(|a| a.rule).collect()
    }

    /// Render for the `/healthz` endpoint.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::str(self.verdict.as_str())),
            ("windows".into(), Json::Num(self.windows as f64)),
            ("rules".into(), Json::Arr(self.rules().iter().map(|r| Json::str(*r)).collect())),
            (
                "alerts".into(),
                Json::Arr(
                    self.alerts
                        .iter()
                        .map(|a| {
                            Json::Obj(vec![
                                ("rule".into(), Json::str(a.rule)),
                                ("severity".into(), Json::str(a.severity.as_str())),
                                ("message".into(), Json::str(&a.message)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Evaluate every rule against a window slice. Pure — `now_us` is the
/// caller's clock (microseconds since [`crate::epoch`]), so tests can
/// prove each rule without sleeping.
pub fn evaluate_windows(windows: &[Window], config: &WatchdogConfig, now_us: u64) -> HealthReport {
    let mut alerts = Vec::new();
    if windows.is_empty() {
        return HealthReport { verdict: Verdict::Healthy, alerts, windows: 0 };
    }

    let tail = |n: usize| &windows[windows.len().saturating_sub(n)..];

    let retries: u64 = tail(config.merge_retry_windows)
        .iter()
        .map(|w| w.counter_delta("index.merge.retried"))
        .sum();
    if retries >= config.merge_retry_limit {
        alerts.push(Alert {
            rule: "merge_retry_storm",
            severity: Verdict::Degraded,
            message: format!(
                "{retries} merge retries in the last {} windows (limit {})",
                config.merge_retry_windows, config.merge_retry_limit
            ),
        });
    }

    let plateau = tail(config.queue_plateau_windows);
    if plateau.len() >= config.queue_plateau_windows {
        let depths: Vec<i64> =
            plateau.iter().filter_map(|w| w.gauge_level("core.pool.queue_depth")).collect();
        if depths.len() == plateau.len()
            && depths.iter().all(|d| *d >= config.queue_plateau_min)
            && depths.windows(2).all(|p| p[1] >= p[0])
        {
            alerts.push(Alert {
                rule: "queue_plateau",
                severity: Verdict::Degraded,
                message: format!(
                    "pool queue depth stuck at {} for {} windows",
                    depths.last().unwrap(),
                    depths.len()
                ),
            });
        }
    }

    let pressured = tail(config.pressure_windows);
    if pressured.len() >= config.pressure_windows
        && pressured.iter().all(|w| w.counter_delta("supervisor.shed.ingest_pressure") > 0)
    {
        alerts.push(Alert {
            rule: "ingest_pressure",
            severity: Verdict::Degraded,
            message: format!(
                "exact queries shed under ingest pressure in each of the last {} windows",
                pressured.len()
            ),
        });
    }

    // Quality-plane rules read the newest window's gauge levels: the
    // recorder samples every well-known gauge each tick, so the levels
    // are the quality plane's state as of the last window.
    let newest = windows.last().unwrap();
    let audited = newest.gauge_level("obs.quality.audited_groups").unwrap_or(0);
    if audited >= config.coverage_min_audits {
        if let Some(bp) = newest.gauge_level("obs.quality.coverage_bp") {
            if bp < config.coverage_min_bp {
                alerts.push(Alert {
                    rule: "coverage_below_nominal",
                    severity: Verdict::Degraded,
                    message: format!(
                        "empirical CI coverage {bp}bp over {audited} audited groups \
                         (minimum {}bp)",
                        config.coverage_min_bp
                    ),
                });
            }
        }
    }

    let drift_bp = newest.gauge_level("obs.quality.stats_drift_bp").unwrap_or(0);
    if drift_bp >= config.drift_limit_bp {
        alerts.push(Alert {
            rule: "stats_drift",
            severity: Verdict::Degraded,
            message: format!(
                "per-predicate walk-rate delta {drift_bp}bp vs previous epoch \
                 (limit {}bp): index stats may be stale",
                config.drift_limit_bp
            ),
        });
    }

    let age_us = now_us.saturating_sub(windows.last().unwrap().end_us);
    if age_us > config.heartbeat_gap.as_micros() as u64 {
        alerts.push(Alert {
            rule: "heartbeat",
            severity: Verdict::Unhealthy,
            message: format!(
                "newest window is {age_us}us old (gap limit {}us): sampler stalled",
                config.heartbeat_gap.as_micros()
            ),
        });
    }

    let verdict =
        alerts.iter().map(|a| a.severity).max().unwrap_or(Verdict::Healthy);
    HealthReport { verdict, alerts, windows: windows.len() }
}

/// Evaluate against a recorder's current ring at the current time.
pub fn evaluate(recorder: &Recorder, config: &WatchdogConfig) -> HealthReport {
    evaluate_windows(&recorder.windows(), config, crate::elapsed_us())
}

/// Evaluate the global recorder (healthy with no alerts when none is
/// installed), publish the verdict to the `obs.watchdog.verdict` gauge
/// and `obs.watchdog.alerts` counter, and emit a structured event on
/// every verdict *transition*.
pub fn tick_global(config: &WatchdogConfig) -> HealthReport {
    use std::sync::atomic::{AtomicU8, Ordering};
    static LAST: AtomicU8 = AtomicU8::new(Verdict::Healthy as u8);

    let report = match Recorder::global() {
        Some(rec) => evaluate(rec, config),
        None => HealthReport { verdict: Verdict::Healthy, alerts: Vec::new(), windows: 0 },
    };
    metrics::WATCHDOG_VERDICT.set(report.verdict as i64);
    metrics::WATCHDOG_ALERTS.add(report.alerts.len() as u64);
    let prev = LAST.swap(report.verdict as u8, Ordering::Relaxed);
    if prev != report.verdict as u8 {
        let level = match report.verdict {
            Verdict::Healthy => Level::Info,
            Verdict::Degraded => Level::Warn,
            Verdict::Unhealthy => Level::Error,
        };
        let rules: Vec<&str> = report.alerts.iter().map(|a| a.rule).collect();
        events::emit_with(
            level,
            "watchdog",
            format!("verdict changed to {}", report.verdict.as_str()),
            vec![("rules", rules.join(","))],
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(
        index: u64,
        end_us: u64,
        counters: Vec<(&str, u64)>,
        queue_depth: Option<i64>,
    ) -> Window {
        Window {
            index,
            start_us: end_us.saturating_sub(1000),
            end_us,
            counters: counters.into_iter().map(|(n, d)| (n.to_string(), d)).collect(),
            gauges: queue_depth
                .map(|d| ("core.pool.queue_depth".to_string(), d))
                .into_iter()
                .collect(),
            histograms: Vec::new(),
        }
    }

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            merge_retry_limit: 3,
            merge_retry_windows: 4,
            queue_plateau_min: 1,
            queue_plateau_windows: 3,
            pressure_windows: 3,
            heartbeat_gap: Duration::from_millis(100),
            coverage_min_bp: 9_000,
            coverage_min_audits: 5,
            drift_limit_bp: 1_500,
        }
    }

    fn quality_window(index: u64, end_us: u64, gauges: Vec<(&str, i64)>) -> Window {
        Window {
            index,
            start_us: end_us.saturating_sub(1000),
            end_us,
            counters: Vec::new(),
            gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn no_windows_is_healthy() {
        let r = evaluate_windows(&[], &cfg(), 10_000_000);
        assert_eq!(r.verdict, Verdict::Healthy);
        assert!(r.alerts.is_empty());
    }

    #[test]
    fn merge_retry_storm_fires_on_rate_not_total() {
        let c = cfg();
        // 5 old retries followed by quiet recent windows: no alert —
        // only the last `merge_retry_windows` windows count.
        let quiet: Vec<Window> = (0..6)
            .map(|i| {
                let retried = if i == 0 { 5 } else { 0 };
                window(i, 1000 * (i + 1), vec![("index.merge.retried", retried)], None)
            })
            .collect();
        let r = evaluate_windows(&quiet, &c, 6000);
        assert!(!r.alerts.iter().any(|a| a.rule == "merge_retry_storm"));

        // 3 retries spread over the recent horizon: alert.
        let storm: Vec<Window> = (0..4)
            .map(|i| window(i, 1000 * (i + 1), vec![("index.merge.retried", 1)], None))
            .collect();
        let r = evaluate_windows(&storm[1..], &c, 4000);
        assert_eq!(r.verdict, Verdict::Degraded);
        assert!(r.alerts.iter().any(|a| a.rule == "merge_retry_storm"));
    }

    #[test]
    fn queue_plateau_requires_full_nondecreasing_run() {
        let c = cfg();
        let plateau: Vec<Window> =
            (0..3).map(|i| window(i, 1000 * (i + 1), vec![], Some(2))).collect();
        let r = evaluate_windows(&plateau, &c, 3000);
        assert!(r.alerts.iter().any(|a| a.rule == "queue_plateau"));
        assert_eq!(r.verdict, Verdict::Degraded);

        // A draining queue (decreasing depth) is not a plateau.
        let draining: Vec<Window> = (0..3)
            .map(|i| window(i, 1000 * (i + 1), vec![], Some(3 - i as i64)))
            .collect();
        assert!(evaluate_windows(&draining, &c, 3000).alerts.is_empty());
        // Too little history is not a plateau either.
        assert!(evaluate_windows(&plateau[..2], &c, 3000).alerts.is_empty());
    }

    #[test]
    fn sustained_pressure_fires_only_when_every_window_sheds() {
        let c = cfg();
        let shed = |i: u64, n: u64| {
            window(i, 1000 * (i + 1), vec![("supervisor.shed.ingest_pressure", n)], None)
        };
        let sustained: Vec<Window> = (0..3).map(|i| shed(i, 2)).collect();
        let r = evaluate_windows(&sustained, &c, 3000);
        assert!(r.alerts.iter().any(|a| a.rule == "ingest_pressure"));

        let intermittent = vec![shed(0, 2), shed(1, 0), shed(2, 2)];
        assert!(evaluate_windows(&intermittent, &c, 3000).alerts.is_empty());
    }

    #[test]
    fn heartbeat_gap_is_unhealthy_and_dominates() {
        let c = cfg();
        // A merge storm AND a stalled sampler: unhealthy wins.
        let stale: Vec<Window> = (0..4)
            .map(|i| window(i, 1000 * (i + 1), vec![("index.merge.retried", 1)], None))
            .collect();
        let now = 4000 + c.heartbeat_gap.as_micros() as u64 + 1;
        let r = evaluate_windows(&stale, &c, now);
        assert_eq!(r.verdict, Verdict::Unhealthy);
        assert!(r.alerts.iter().any(|a| a.rule == "heartbeat"));
        assert!(r.alerts.iter().any(|a| a.rule == "merge_retry_storm"));
        // Fresh windows: no heartbeat alert.
        let r = evaluate_windows(&stale, &c, 4001);
        assert!(!r.alerts.iter().any(|a| a.rule == "heartbeat"));
    }

    #[test]
    fn coverage_below_nominal_requires_enough_audits() {
        let c = cfg();
        // 4 audited groups at 50% coverage: below the 5-audit floor, quiet.
        let thin = vec![quality_window(
            0,
            1000,
            vec![("obs.quality.audited_groups", 4), ("obs.quality.coverage_bp", 5_000)],
        )];
        assert!(evaluate_windows(&thin, &c, 1001).alerts.is_empty());
        // 8 audited groups at 50%: fires.
        let bad = vec![quality_window(
            0,
            1000,
            vec![("obs.quality.audited_groups", 8), ("obs.quality.coverage_bp", 5_000)],
        )];
        let r = evaluate_windows(&bad, &c, 1001);
        assert_eq!(r.verdict, Verdict::Degraded);
        assert!(r.alerts.iter().any(|a| a.rule == "coverage_below_nominal"));
        // 8 audited groups at 95%: healthy.
        let good = vec![quality_window(
            0,
            1000,
            vec![("obs.quality.audited_groups", 8), ("obs.quality.coverage_bp", 9_500)],
        )];
        assert!(evaluate_windows(&good, &c, 1001).alerts.is_empty());
    }

    #[test]
    fn stats_drift_fires_on_latest_window_level() {
        let c = cfg();
        let calm = vec![quality_window(0, 1000, vec![("obs.quality.stats_drift_bp", 400)])];
        assert!(evaluate_windows(&calm, &c, 1001).alerts.is_empty());
        let drifted = vec![
            quality_window(0, 1000, vec![("obs.quality.stats_drift_bp", 400)]),
            quality_window(1, 2000, vec![("obs.quality.stats_drift_bp", 2_200)]),
        ];
        let r = evaluate_windows(&drifted, &c, 2001);
        assert_eq!(r.verdict, Verdict::Degraded);
        assert!(r.alerts.iter().any(|a| a.rule == "stats_drift"));
        // Only the newest window counts: a recovered plane is healthy.
        let recovered = vec![
            quality_window(0, 1000, vec![("obs.quality.stats_drift_bp", 2_200)]),
            quality_window(1, 2000, vec![("obs.quality.stats_drift_bp", 0)]),
        ];
        assert!(evaluate_windows(&recovered, &c, 2001).alerts.is_empty());
    }

    #[test]
    fn report_lists_all_fired_rule_names() {
        let c = cfg();
        // Trip both quality rules at once; the body must name each.
        let w = vec![quality_window(
            0,
            1000,
            vec![
                ("obs.quality.audited_groups", 10),
                ("obs.quality.coverage_bp", 4_000),
                ("obs.quality.stats_drift_bp", 3_000),
            ],
        )];
        let r = evaluate_windows(&w, &c, 1001);
        assert_eq!(r.rules(), vec!["coverage_below_nominal", "stats_drift"]);
        let j = r.to_json();
        let rules = j.get("rules").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = rules.iter().filter_map(Json::as_str).collect();
        assert_eq!(names, vec!["coverage_below_nominal", "stats_drift"]);
    }

    #[test]
    fn health_report_json_round_trips() {
        let r = evaluate_windows(&[], &cfg(), 0);
        let j = r.to_json();
        assert_eq!(j.get("status").and_then(Json::as_str), Some("healthy"));
        assert!(j.get("rules").and_then(Json::as_arr).is_some_and(|a| a.is_empty()));
        assert_eq!(Json::parse(&j.pretty(2)).unwrap(), j);
    }
}
