//! RAII span timers with a thread-local scoped-span stack.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! records it into a [`Histogram`]. While alive it sits on a
//! thread-local stack, so nested spans are well-scoped per thread and
//! [events](crate::events) emitted inside one are tagged with the
//! innermost span name ([`current`]).
//!
//! When telemetry is disabled at span creation the span is inert: no
//! clock read, no stack push, and nothing recorded on drop (even if
//! telemetry is enabled mid-flight — a half-timed interval would lie).
//!
//! When the current thread is attached to a live
//! [`QueryProfile`](crate::profile::QueryProfile), each `Span` also
//! opens a node in that profile's span *tree* under the same name, so
//! existing `Span::timed` call sites get per-query attribution for
//! free. Profile participation is independent of the metrics gate —
//! a profile is an explicit opt-in scope, so its spans are collected
//! even when global histograms are off.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::Histogram;
use crate::profile::ProfileSpan;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active span name on this thread, if any.
pub fn current() -> Option<&'static str> {
    STACK.with(|s| s.borrow().last().copied())
}

/// An RAII timer: records elapsed nanoseconds into a histogram on drop.
#[must_use = "a span measures until it is dropped; binding to _ drops immediately"]
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    hist: &'static Histogram,
    /// Mirror node in the current thread's profile tree (inert when the
    /// thread is not attached to a profile). Dropped with the span.
    _profile: ProfileSpan,
}

impl Span {
    /// Start timing into `hist` (named after the histogram). Inert when
    /// telemetry is disabled — except for the profile-tree mirror node,
    /// which follows the profile attachment instead (an explicit
    /// per-query opt-in must not depend on the global metrics flag).
    #[inline]
    pub fn timed(hist: &'static Histogram) -> Span {
        let profile = crate::profile::span(hist.name());
        if crate::enabled() {
            STACK.with(|s| s.borrow_mut().push(hist.name()));
            Span { start: Some(Instant::now()), hist, _profile: profile }
        } else {
            Span { start: None, hist, _profile: profile }
        }
    }

    /// Is this span actually timing (telemetry was enabled at creation)?
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            self.hist.record_always(ns);
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                debug_assert_eq!(stack.last(), Some(&self.hist.name()), "span stack imbalance");
                stack.pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static OUTER: Histogram = Histogram::new("test.span.outer");
    static INNER: Histogram = Histogram::new("test.span.inner");

    #[test]
    fn spans_nest_and_record() {
        let _guard = crate::metrics::test_lock();
        crate::set_enabled(true);
        assert_eq!(current(), None);
        {
            let outer = Span::timed(&OUTER);
            assert!(outer.is_active());
            assert_eq!(current(), Some("test.span.outer"));
            {
                let _inner = Span::timed(&INNER);
                assert_eq!(current(), Some("test.span.inner"));
            }
            assert_eq!(current(), Some("test.span.outer"));
        }
        crate::set_enabled(false);
        assert_eq!(current(), None);
        assert_eq!(OUTER.count(), 1);
        assert_eq!(INNER.count(), 1);
        OUTER.reset();
        INNER.reset();
    }

    #[test]
    fn spans_mirror_into_profile_tree() {
        let _guard = crate::metrics::test_lock();
        crate::set_enabled(true);
        static PH: Histogram = Histogram::new("test.span.profiled");
        let p = crate::profile::QueryProfile::begin("span-mirror");
        {
            let _attach = p.attach("main");
            let _s = Span::timed(&PH);
            crate::profile::add("inside", 4);
        }
        crate::set_enabled(false);
        let report = p.finish();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "test.span.profiled");
        assert_eq!(report.spans[0].counters, vec![("inside".to_string(), 4)]);
        PH.reset();
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = crate::metrics::test_lock();
        crate::set_enabled(false);
        static H: Histogram = Histogram::new("test.span.inert");
        let s = Span::timed(&H);
        assert!(!s.is_active());
        assert_eq!(current(), None);
        drop(s);
        assert_eq!(H.count(), 0);
    }
}
