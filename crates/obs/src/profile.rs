//! Per-query span *trees* with operator-level counter attribution.
//!
//! The [`Span`](crate::Span) stack in [`span`](crate::span) answers
//! "what is this thread doing right now" and feeds global histograms —
//! but every query and every `run_parallel` worker smears into the same
//! process-wide aggregate. This module adds the missing per-request
//! dimension: an explicit [`QueryProfile`] scope with a trace id that
//! collects spans as a *tree* (ids, parent links, per-span wall time,
//! attached counters), across however many threads the query fans out
//! to.
//!
//! ## Life cycle
//!
//! ```text
//! let profile = QueryProfile::begin("dbpedia/q64/step4");
//! let _main = profile.attach("main");          // bind this thread
//! {
//!     let _s = profile::span("supervisor");     // tree node (RAII)
//!     profile::add("walks", 128);               // counter on that node
//! }
//! let report = profile.finish();                // -> ProfileReport
//! report.to_text();    // EXPLAIN ANALYZE-style annotated tree
//! report.to_folded();  // collapsed stacks for flamegraph tooling
//! report.to_json();    // schema "kgoa-obs/v2", parses with crate::Json
//! ```
//!
//! Worker threads join the same tree by capturing a [`ProfileHandle`]
//! (`current_handle()`) **before** spawning and calling
//! [`ProfileHandle::attach`] with a per-worker label; each attached
//! thread contributes its own root spans tagged with its label, so
//! concurrent workers (and concurrent *queries*, each with its own
//! `QueryProfile`) never mix.
//!
//! ## Cost model
//!
//! When no profile is live anywhere in the process, [`span`] and
//! [`add`] cost one relaxed load of [`LIVE_PROFILES`] plus a branch —
//! the same fast-path discipline as [`crate::enabled`], enforced by the
//! `obs-overhead` CI gate. When a profile is live but *this* thread is
//! not attached to one, the extra cost is a thread-local read. Only
//! attached threads pay for clock reads and node bookkeeping.
//!
//! Spans are flushed to the shared tree when they close; RAII drops
//! keep the per-thread open-span stack balanced even when a panic
//! unwinds through `catch_unwind` (see `tests/telemetry.rs`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Schema identifier for [`ProfileReport::to_json`] documents.
pub const PROFILE_SCHEMA: &str = "kgoa-obs/v2";

/// Number of live [`QueryProfile`] scopes process-wide. Zero means the
/// profiling fast path is a single relaxed load + branch.
static LIVE_PROFILES: AtomicUsize = AtomicUsize::new(0);

/// Process-wide trace-id allocator (monotonic, never reused).
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Could *any* thread currently be attached to a profile? One relaxed
/// atomic load — the fast path instrumented code takes when no query is
/// being profiled.
#[inline(always)]
pub fn profiling_possible() -> bool {
    LIVE_PROFILES.load(Ordering::Relaxed) != 0
}

/// Is *this* thread attached to a live profile? Instrumentation that
/// would do nontrivial work to build a span name should check this
/// first.
#[inline]
pub fn active() -> bool {
    profiling_possible() && CURRENT.with(|c| c.borrow().is_some())
}

/// One finished span in a profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Tree-unique id (allocation order, starts at 1).
    pub id: u64,
    /// Parent span id, `None` for a thread-root span.
    pub parent: Option<u64>,
    /// Label of the thread that produced the span ("main", "worker-0").
    pub thread: String,
    /// Span name, e.g. `engine.lftj.run` or `aj.step2[p3]`.
    pub name: String,
    /// Microseconds from profile begin to span open.
    pub start_us: u64,
    /// Wall time from open to close, nanoseconds.
    pub total_ns: u64,
    /// Counters attributed to this span via [`add`], insertion order.
    pub counters: Vec<(String, u64)>,
}

/// Shared mutable state behind one [`QueryProfile`].
#[derive(Debug)]
struct ProfileInner {
    trace_id: u64,
    query: String,
    started: Instant,
    next_id: AtomicU64,
    /// Completed spans, in completion order (children before parents).
    done: Mutex<Vec<SpanNode>>,
}

impl ProfileInner {
    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// A span that has been opened on the current thread but not yet
/// closed.
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: u64,
    opened: Instant,
    counters: Vec<(String, u64)>,
}

/// Per-thread attachment: which profile this thread feeds and the stack
/// of open spans.
struct ThreadCtx {
    inner: Arc<ProfileInner>,
    label: String,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// A live per-query profiling scope. Dropping (or [`finish`]ing) it
/// decrements the global live count; spans from threads that are still
/// attached after that are silently discarded.
///
/// [`finish`]: QueryProfile::finish
#[derive(Debug)]
pub struct QueryProfile {
    inner: Arc<ProfileInner>,
}

impl QueryProfile {
    /// Open a new profile scope for `query` and allocate a trace id.
    pub fn begin(query: impl Into<String>) -> QueryProfile {
        LIVE_PROFILES.fetch_add(1, Ordering::Relaxed);
        QueryProfile {
            inner: Arc::new(ProfileInner {
                trace_id: NEXT_TRACE.fetch_add(1, Ordering::Relaxed),
                query: query.into(),
                started: Instant::now(),
                next_id: AtomicU64::new(1),
                done: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-unique trace id of this profile.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// A cloneable handle for attaching *other* threads (capture it
    /// before spawning workers).
    pub fn handle(&self) -> ProfileHandle {
        ProfileHandle { inner: Arc::clone(&self.inner) }
    }

    /// Attach the current thread to this profile under `label`. Spans
    /// opened while the returned guard is alive become part of the
    /// tree. Guards nest: dropping restores whatever the thread was
    /// attached to before.
    pub fn attach(&self, label: impl Into<String>) -> AttachGuard {
        self.handle().attach(label)
    }

    /// Close the scope and assemble the report. Spans still open on
    /// attached threads are not included — detach (drop the guards)
    /// first.
    pub fn finish(self) -> ProfileReport {
        let inner = Arc::clone(&self.inner);
        drop(self); // decrements LIVE_PROFILES
        let duration_us = inner.started.elapsed().as_micros() as u64;
        let mut spans = std::mem::take(&mut *lock(&inner.done));
        spans.sort_by_key(|n| n.id);
        ProfileReport {
            trace_id: inner.trace_id,
            query: inner.query.clone(),
            duration_us,
            spans,
        }
    }
}

impl Drop for QueryProfile {
    fn drop(&mut self) {
        LIVE_PROFILES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A cloneable, sendable reference to a live profile, used to attach
/// worker threads. Holding a handle does not keep the scope "live" for
/// the fast-path gate — only the [`QueryProfile`] itself does.
#[derive(Debug, Clone)]
pub struct ProfileHandle {
    inner: Arc<ProfileInner>,
}

impl ProfileHandle {
    /// Attach the current thread to the profile under `label`; see
    /// [`QueryProfile::attach`].
    pub fn attach(&self, label: impl Into<String>) -> AttachGuard {
        let prev = CURRENT.with(|c| {
            c.borrow_mut().replace(ThreadCtx {
                inner: Arc::clone(&self.inner),
                label: label.into(),
                stack: Vec::new(),
            })
        });
        AttachGuard { prev: Some(prev) }
    }
}

/// The handle of the profile the current thread is attached to, if any.
/// `run_parallel` captures this before spawning so workers land in the
/// caller's tree.
pub fn current_handle() -> Option<ProfileHandle> {
    if !profiling_possible() {
        return None;
    }
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|ctx| ProfileHandle { inner: Arc::clone(&ctx.inner) })
    })
}

/// Trace id of the profile this thread is attached to, if any. Lets
/// instrumentation (the SLO tracker, the supervisor) stamp exemplars
/// with the trace without holding a [`ProfileHandle`].
pub fn current_trace_id() -> Option<u64> {
    if !profiling_possible() {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.inner.trace_id))
}

/// RAII guard for a thread attachment; restores the previous attachment
/// (possibly none) on drop and asserts the open-span stack drained.
#[must_use = "detaches on drop; binding to _ detaches immediately"]
pub struct AttachGuard {
    /// `Some(prev)` until dropped; the inner option is the attachment
    /// that was active before.
    prev: Option<Option<ThreadCtx>>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| {
                let ended = c.borrow_mut().take();
                debug_assert!(
                    ended.as_ref().is_none_or(|ctx| ctx.stack.is_empty()),
                    "profile span stack not drained at detach"
                );
                *c.borrow_mut() = prev;
            });
        }
    }
}

impl std::fmt::Debug for AttachGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AttachGuard")
    }
}

/// An RAII profile-tree span. No-op (and allocation-free) when the
/// current thread is not attached to a live profile.
#[must_use = "a profile span measures until it is dropped"]
#[derive(Debug, Default)]
pub struct ProfileSpan {
    /// Id of the opened node; `None` when inert.
    id: Option<u64>,
}

/// Open a span named `name` under the innermost open span of the
/// current thread (or as a thread root). Returns an inert guard when
/// the thread is not attached — callers pay one relaxed load + branch.
#[inline]
pub fn span(name: impl Into<String>) -> ProfileSpan {
    if !profiling_possible() {
        return ProfileSpan { id: None };
    }
    span_slow(name.into())
}

fn span_slow(name: String) -> ProfileSpan {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(ctx) = cur.as_mut() else { return ProfileSpan { id: None } };
        let id = ctx.inner.alloc_id();
        let parent = ctx.stack.last().map(|o| o.id);
        ctx.stack.push(OpenSpan {
            id,
            parent,
            name,
            start_us: ctx.inner.started.elapsed().as_micros() as u64,
            opened: Instant::now(),
            counters: Vec::new(),
        });
        ProfileSpan { id: Some(id) }
    })
}

impl Drop for ProfileSpan {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            let Some(ctx) = cur.as_mut() else { return };
            // Spans close strictly LIFO per thread (RAII), so the top
            // of the stack is ours; be defensive anyway during unwinds.
            let Some(pos) = ctx.stack.iter().rposition(|o| o.id == id) else { return };
            debug_assert_eq!(pos + 1, ctx.stack.len(), "profile span closed out of order");
            let open = ctx.stack.remove(pos);
            let node = SpanNode {
                id: open.id,
                parent: open.parent,
                thread: ctx.label.clone(),
                name: open.name,
                start_us: open.start_us,
                total_ns: open.opened.elapsed().as_nanos() as u64,
                counters: open.counters,
            };
            lock(&ctx.inner.done).push(node);
        });
    }
}

/// Attribute `n` to counter `key` on the innermost open span of the
/// current thread. No-op when not attached or no span is open.
#[inline]
pub fn add(key: &'static str, n: u64) {
    if !profiling_possible() {
        return;
    }
    add_slow(key, n);
}

fn add_slow(key: &'static str, n: u64) {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(open) = cur.as_mut().and_then(|ctx| ctx.stack.last_mut()) else { return };
        match open.counters.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += n,
            None => open.counters.push((key.to_string(), n)),
        }
    });
}

/// Open a span and attach a set of counters in one call — the idiom for
/// emitting an *operator attribution leaf* (zero wall time, counters
/// only) after a run.
pub fn leaf(name: impl Into<String>, counters: &[(&'static str, u64)]) {
    if !profiling_possible() {
        return;
    }
    let s = span(name);
    if s.id.is_some() {
        for &(k, n) in counters {
            add(k, n);
        }
    }
    drop(s);
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

/// A finished profile: the span tree plus scope metadata. Produced by
/// [`QueryProfile::finish`] and by [`ProfileReport::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// The query label passed to [`QueryProfile::begin`].
    pub query: String,
    /// Wall time of the whole scope, microseconds.
    pub duration_us: u64,
    /// All finished spans, sorted by id (ids are allocated at open, so
    /// parents sort before their children).
    pub spans: Vec<SpanNode>,
}

impl ProfileReport {
    /// Self time of span `i` (index into [`spans`](Self::spans)):
    /// total minus the total of direct children, saturating at zero
    /// (children can overlap the parent's tail during unwinds).
    pub fn self_ns(&self, i: usize) -> u64 {
        let id = self.spans[i].id;
        let children: u64 = self
            .spans
            .iter()
            .filter(|n| n.parent == Some(id))
            .map(|n| n.total_ns)
            .sum();
        self.spans[i].total_ns.saturating_sub(children)
    }

    /// Serialise as a schema-`kgoa-obs/v2` JSON document.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Json::Obj(vec![
                    ("id".into(), Json::Num(n.id as f64)),
                    (
                        "parent".into(),
                        n.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                    ),
                    ("thread".into(), Json::str(&n.thread)),
                    ("name".into(), Json::str(&n.name)),
                    ("start_us".into(), Json::Num(n.start_us as f64)),
                    ("total_ns".into(), Json::Num(n.total_ns as f64)),
                    ("self_ns".into(), Json::Num(self.self_ns(i) as f64)),
                    (
                        "counters".into(),
                        Json::Obj(
                            n.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(PROFILE_SCHEMA)),
            ("trace_id".into(), Json::Num(self.trace_id as f64)),
            ("query".into(), Json::str(&self.query)),
            ("duration_us".into(), Json::Num(self.duration_us as f64)),
            ("spans".into(), Json::Arr(spans)),
        ])
    }

    /// Parse a document produced by [`to_json`](Self::to_json). The
    /// derived `self_ns` field is recomputed, not trusted. Used for
    /// schema validation in `repro profile` and tests.
    pub fn from_json(doc: &Json) -> Result<ProfileReport, String> {
        fn num(doc: &Json, key: &str) -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        }
        fn s(doc: &Json, key: &str) -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        }
        match doc.get("schema").and_then(Json::as_str) {
            Some(PROFILE_SCHEMA) => {}
            other => return Err(format!("schema mismatch: {other:?}")),
        }
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing spans array")?
            .iter()
            .map(|n| {
                let parent = match n.get("parent") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(
                        v.as_f64().map(|f| f as u64).ok_or("parent must be null or a number")?,
                    ),
                };
                let counters = n
                    .get("counters")
                    .and_then(Json::as_obj)
                    .ok_or("missing counters object")?
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|f| (k.clone(), f as u64))
                            .ok_or_else(|| format!("counter {k:?} must be a number"))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(SpanNode {
                    id: num(n, "id")?,
                    parent,
                    thread: s(n, "thread")?,
                    name: s(n, "name")?,
                    start_us: num(n, "start_us")?,
                    total_ns: num(n, "total_ns")?,
                    counters,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ProfileReport {
            trace_id: num(doc, "trace_id")?,
            query: s(doc, "query")?,
            duration_us: num(doc, "duration_us")?,
            spans,
        })
    }

    /// Render an `EXPLAIN ANALYZE`-style annotated tree: one line per
    /// span with total/self wall time, thread tag, and counters.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "profile trace={} query={} duration={} spans={}\n",
            self.trace_id,
            self.query,
            fmt_us(self.duration_us),
            self.spans.len()
        );
        // Children of each parent, in id (open) order.
        let roots: Vec<usize> =
            (0..self.spans.len()).filter(|&i| self.spans[i].parent.is_none()).collect();
        for (k, &r) in roots.iter().enumerate() {
            self.write_node(&mut out, r, "", k + 1 == roots.len());
        }
        out
    }

    fn write_node(&self, out: &mut String, i: usize, prefix: &str, last: bool) {
        let n = &self.spans[i];
        let branch = if last { "└─ " } else { "├─ " };
        let counters = if n.counters.is_empty() {
            String::new()
        } else {
            let kv: Vec<String> =
                n.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  {{{}}}", kv.join(", "))
        };
        out.push_str(&format!(
            "{prefix}{branch}{name}  (total {total}, self {selft}) [{thread}]{counters}\n",
            name = n.name,
            total = fmt_ns(n.total_ns),
            selft = fmt_ns(self.self_ns(i)),
            thread = n.thread,
        ));
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        let children: Vec<usize> = (0..self.spans.len())
            .filter(|&c| self.spans[c].parent == Some(n.id))
            .collect();
        for (k, &c) in children.iter().enumerate() {
            self.write_node(out, c, &child_prefix, k + 1 == children.len());
        }
    }

    /// Render collapsed stacks in the `folded` format consumed by
    /// standard flamegraph tooling: one `frame;frame;... value` line
    /// per span, rooted at the thread label. The value is the span's
    /// self time in nanoseconds, or (for zero-duration attribution
    /// leaves) the sum of its counters; zero-valued lines are omitted.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.spans.iter().enumerate() {
            let mut value = self.self_ns(i);
            if value == 0 {
                value = n.counters.iter().map(|(_, v)| v).sum();
            }
            if value == 0 {
                continue;
            }
            let mut frames = vec![frame(&n.name)];
            let mut cur = n.parent;
            while let Some(pid) = cur {
                let Some(p) = self.spans.iter().find(|m| m.id == pid) else { break };
                frames.push(frame(&p.name));
                cur = p.parent;
            }
            frames.push(frame(&n.thread));
            frames.reverse();
            out.push_str(&frames.join(";"));
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

/// Sanitise a span name into a folded-format frame: the format reserves
/// `;` (frame separator) and ` ` (value separator).
fn frame(name: &str) -> String {
    name.replace(';', ":").replace(' ', "_")
}

/// Check that `folded` is well-formed (`frame;frame;... <u64>` per
/// line); returns the line count. Used by `repro profile`
/// self-validation and tests.
pub fn check_folded(folded: &str) -> Result<usize, String> {
    let mut lines = 0;
    for (ln, line) in folded.lines().enumerate() {
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator", ln + 1))?;
        value
            .parse::<u64>()
            .map_err(|_| format!("line {}: value {value:?} is not a u64", ln + 1))?;
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty frame in {stack:?}", ln + 1));
        }
        lines += 1;
    }
    Ok(lines)
}

/// How many spans are currently open on this thread's profile stack
/// (0 when detached). Exposed for balance assertions in tests.
pub fn open_depth() -> usize {
    CURRENT.with(|c| c.borrow().as_ref().map_or(0, |ctx| ctx.stack.len()))
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_us(us: u64) -> String {
    fmt_ns(us.saturating_mul(1_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_thread_is_inert() {
        let p = QueryProfile::begin("other");
        // This thread never attached: spans/adds are no-ops.
        {
            let s = span("ghost");
            assert!(s.id.is_none());
            add("n", 3);
        }
        let report = p.finish();
        assert!(report.spans.is_empty());
        assert_eq!(open_depth(), 0);
    }

    #[test]
    fn no_live_profile_is_one_branch() {
        // With no profile anywhere, span() must return the inert guard.
        if !profiling_possible() {
            assert!(span("x").id.is_none());
        }
    }

    #[test]
    fn tree_nests_with_counters() {
        let p = QueryProfile::begin("q");
        let g = p.attach("main");
        {
            let _root = span("root");
            add("top", 1);
            {
                let _child = span("child");
                add("seeks", 5);
                add("seeks", 2);
                add("probes", 1);
            }
            leaf("leaf", &[("rows", 9)]);
        }
        drop(g);
        let report = p.finish();
        assert_eq!(report.spans.len(), 3);
        let root = &report.spans[0];
        let child = &report.spans[1];
        let leafn = &report.spans[2];
        assert_eq!(root.name, "root");
        assert_eq!(root.parent, None);
        assert_eq!(root.counters, vec![("top".to_string(), 1)]);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(
            child.counters,
            vec![("seeks".to_string(), 7), ("probes".to_string(), 1)]
        );
        assert_eq!(leafn.parent, Some(root.id));
        assert_eq!(leafn.thread, "main");
        // Self time: root's total covers both children.
        assert!(root.total_ns >= child.total_ns + leafn.total_ns);
        let text = report.to_text();
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("seeks=7"), "{text}");
    }

    #[test]
    fn json_round_trips() {
        let p = QueryProfile::begin("round/trip");
        let g = p.attach("main");
        {
            let _a = span("a");
            let _b = span("b");
            add("k", 42);
        }
        drop(g);
        let report = p.finish();
        let doc = report.to_json();
        let text = doc.pretty(2);
        let reparsed = Json::parse(&text).expect("profile JSON parses");
        let back = ProfileReport::from_json(&reparsed).expect("schema validates");
        assert_eq!(back, report);
    }

    #[test]
    fn folded_output_is_wellformed() {
        let p = QueryProfile::begin("folded");
        let g = p.attach("main thread"); // space must be sanitised
        {
            let _a = span("outer span");
            std::thread::sleep(std::time::Duration::from_millis(1));
            leaf("op;leaf", &[("n", 3)]);
        }
        drop(g);
        let report = p.finish();
        let folded = report.to_folded();
        let lines = check_folded(&folded).expect("well-formed folded output");
        assert!(lines >= 2, "expected both spans present:\n{folded}");
        assert!(folded.contains("main_thread;outer_span"), "{folded}");
        assert!(folded.contains(";op:leaf "), "{folded}");
        assert!(check_folded("bad line\n").is_err());
        assert!(check_folded(";x 1\n").is_err());
    }

    #[test]
    fn attach_guards_nest_and_restore() {
        let outer = QueryProfile::begin("outer");
        let inner = QueryProfile::begin("inner");
        {
            let _go = outer.attach("main");
            {
                let _gi = inner.attach("main");
                let _s = span("in-inner");
            }
            let _s = span("in-outer");
        }
        let ri = inner.finish();
        let ro = outer.finish();
        assert_eq!(ri.spans.len(), 1);
        assert_eq!(ri.spans[0].name, "in-inner");
        assert_eq!(ro.spans.len(), 1);
        assert_eq!(ro.spans[0].name, "in-outer");
        assert_ne!(ri.trace_id, ro.trace_id);
    }

    #[test]
    fn spans_survive_unwinding_balanced() {
        let p = QueryProfile::begin("panicky");
        let g = p.attach("main");
        let _outer = span("outer");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = span("doomed");
            panic!("boom");
        }));
        assert!(r.is_err());
        // The unwound span closed itself; only `outer` remains open.
        assert_eq!(open_depth(), 1);
        drop(_outer);
        drop(g);
        let report = p.finish();
        assert_eq!(report.spans.len(), 2);
        assert!(report.spans.iter().any(|n| n.name == "doomed"));
    }
}
