//! Time-series recorder: windowed metric deltas in a bounded ring.
//!
//! A [`Snapshot`](crate::Snapshot) answers "what are the lifetime
//! totals right now"; operations questions are about *rates* — "is
//! `index.merge.retried` climbing", "has `core.pool.queue_depth` been
//! stuck for the last minute". The [`Recorder`] answers those: each
//! [`sample_now`](Recorder::sample_now) call closes a [`Window`]
//! holding the per-counter **delta** since the previous sample (and the
//! sampled level of every gauge), and the most recent
//! [`RecorderConfig::capacity`] windows are retained in a ring.
//!
//! The recorder does not own a thread: sampling is driven externally
//! (see `kgoa_core::monitor`, which submits one short sample job per
//! tick to the shared worker pool) so the obs crate stays free of
//! scheduling policy. Overlapping drivers are safe — sampling is
//! serialised on an internal mutex — but pointless; drivers should
//! skip a tick when the previous sample is still in flight and count
//! it via `obs.recorder.ticks_skipped`.
//!
//! ## Schema (`kgoa-obs/v3`)
//!
//! ```json
//! {
//!   "schema": "kgoa-obs/v3",
//!   "tick_us": 250000,
//!   "capacity": 240,
//!   "dropped": 0,
//!   "windows": [
//!     {"index": 0, "start_us": 10, "end_us": 250010,
//!      "counters": {"index.trie.seeks": {"delta": 42, "rate_per_sec": 168.0}},
//!      "gauges": {"core.pool.queue_depth": 3},
//!      "histograms": {"supervisor.supervise_ns": {"count": 2, "sum": 91000}}},
//!     ...
//!   ]
//! }
//! ```
//!
//! Counters and histograms with a zero delta in a window are omitted
//! (idle windows are near-empty); gauges are always reported so level
//! plateaus stay visible to the watchdog. Deltas use `saturating_sub`
//! against the previous reading, so a [`crate::reset`] between windows
//! yields a zero delta rather than an underflow.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::json::Json;
use crate::metrics;
use crate::registry::Registry;

/// Schema identifier stamped into every JSON series export.
pub const SERIES_SCHEMA: &str = "kgoa-obs/v3";

/// Recorder sizing.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Intended sampling interval. The recorder itself does not keep
    /// time — this is advisory for drivers and is exported in the
    /// series header so consumers can interpret rates.
    pub tick: Duration,
    /// Maximum retained windows; older windows are dropped (and
    /// counted). The default (240 × 250 ms) covers one minute.
    pub capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { tick: Duration::from_millis(250), capacity: 240 }
    }
}

/// One closed sampling window: deltas since the previous sample.
#[derive(Debug, Clone)]
pub struct Window {
    /// Monotonic window number (not reset when old windows drop).
    pub index: u64,
    /// Microseconds since [`crate::epoch`] when the window opened
    /// (= the previous sample time, or recorder creation for window 0).
    pub start_us: u64,
    /// Microseconds since [`crate::epoch`] when the window closed.
    pub end_us: u64,
    /// Counter deltas over the window, non-zero only, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels at window close, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram `(count, sum)` deltas, non-zero count only, sorted.
    pub histograms: Vec<(String, u64, u64)>,
}

impl Window {
    /// Delta recorded for a counter in this window (0 if absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, d)| *d)
    }

    /// Sampled level of a gauge at window close, if it was present.
    pub fn gauge_level(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Window span in seconds (floored at 1 µs so rates stay finite).
    pub fn span_secs(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)).max(1) as f64 / 1e6
    }
}

struct Inner {
    /// Previous reading per counter name, for delta computation.
    counter_base: HashMap<String, u64>,
    /// Previous `(count, sum)` per histogram name.
    hist_base: HashMap<String, (u64, u64)>,
    windows: Vec<Window>,
    next_index: u64,
    last_end_us: u64,
    dropped: u64,
}

/// Windowed time-series recorder over all counters, gauges, and
/// histograms (well-known statics plus the dynamic registry).
pub struct Recorder {
    config: RecorderConfig,
    inner: Mutex<Inner>,
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

impl Recorder {
    /// Build a detached recorder (used by tests; production code uses
    /// [`install`](Self::install)). The first window's deltas are
    /// measured from the metric values at construction time.
    pub fn new(config: RecorderConfig) -> Recorder {
        let capacity = config.capacity.max(1);
        Recorder {
            config: RecorderConfig { capacity, ..config },
            inner: Mutex::new(Inner {
                counter_base: HashMap::new(),
                hist_base: HashMap::new(),
                windows: Vec::new(),
                next_index: 0,
                last_end_us: crate::elapsed_us(),
                dropped: 0,
            }),
        }
    }

    /// Install the process-global recorder. The first call wins and
    /// returns it; later calls ignore their config and return the
    /// existing instance (reconfiguring a live ring would corrupt the
    /// delta baselines of in-flight consumers).
    pub fn install(config: RecorderConfig) -> &'static Recorder {
        GLOBAL.get_or_init(|| Recorder::new(config))
    }

    /// The installed global recorder, if [`install`](Self::install)
    /// has run.
    pub fn global() -> Option<&'static Recorder> {
        GLOBAL.get()
    }

    /// Advisory sampling interval from the config.
    pub fn tick(&self) -> Duration {
        self.config.tick
    }

    /// Close the current window: read every metric, store deltas since
    /// the previous reading, and push the window into the ring.
    /// Returns the index of the window just closed.
    pub fn sample_now(&self) -> u64 {
        let reg = Registry::global();
        let counters: Vec<(String, u64)> = metrics::COUNTERS
            .iter()
            .copied()
            .chain(reg.counters())
            .map(|c| (c.name().to_owned(), c.get()))
            .collect();
        let gauges: Vec<(String, i64)> = metrics::GAUGES
            .iter()
            .copied()
            .chain(reg.gauges())
            .map(|g| (g.name().to_owned(), g.get()))
            .collect();
        let hists: Vec<(String, u64, u64)> = metrics::HISTOGRAMS
            .iter()
            .copied()
            .chain(reg.histograms())
            .map(|h| (h.name().to_owned(), h.count(), h.sum()))
            .collect();

        let now = crate::elapsed_us();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut counter_deltas: Vec<(String, u64)> = counters
            .into_iter()
            .filter_map(|(name, v)| {
                let prev = inner.counter_base.insert(name.clone(), v).unwrap_or(0);
                let delta = v.saturating_sub(prev);
                (delta > 0).then_some((name, delta))
            })
            .collect();
        counter_deltas.sort();
        let mut gauge_levels = gauges;
        gauge_levels.sort();
        let mut hist_deltas: Vec<(String, u64, u64)> = hists
            .into_iter()
            .filter_map(|(name, count, sum)| {
                let (pc, ps) =
                    inner.hist_base.insert(name.clone(), (count, sum)).unwrap_or((0, 0));
                let dc = count.saturating_sub(pc);
                (dc > 0).then(|| (name, dc, sum.saturating_sub(ps)))
            })
            .collect();
        hist_deltas.sort();

        let index = inner.next_index;
        inner.next_index += 1;
        let window = Window {
            index,
            start_us: inner.last_end_us,
            end_us: now,
            counters: counter_deltas,
            gauges: gauge_levels,
            histograms: hist_deltas,
        };
        inner.last_end_us = now;
        if inner.windows.len() == self.config.capacity {
            inner.windows.remove(0);
            inner.dropped += 1;
        }
        inner.windows.push(window);
        metrics::RECORDER_TICKS.inc();
        index
    }

    /// Copy of the retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).windows.clone()
    }

    /// Windows evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Render the retained series to the [`SERIES_SCHEMA`] document.
    pub fn to_json(&self) -> Json {
        let (windows, dropped) = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            (inner.windows.clone(), inner.dropped)
        };
        Json::Obj(vec![
            ("schema".into(), Json::str(SERIES_SCHEMA)),
            ("tick_us".into(), Json::Num(self.config.tick.as_micros() as f64)),
            ("capacity".into(), Json::Num(self.config.capacity as f64)),
            ("dropped".into(), Json::Num(dropped as f64)),
            (
                "windows".into(),
                Json::Arr(windows.iter().map(Window::to_json).collect()),
            ),
        ])
    }
}

impl Window {
    /// Render one window to its JSON object form.
    pub fn to_json(&self) -> Json {
        let span = self.span_secs();
        Json::Obj(vec![
            ("index".into(), Json::Num(self.index as f64)),
            ("start_us".into(), Json::Num(self.start_us as f64)),
            ("end_us".into(), Json::Num(self.end_us as f64)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, d)| {
                            (
                                n.clone(),
                                Json::Obj(vec![
                                    ("delta".into(), Json::Num(*d as f64)),
                                    (
                                        "rate_per_sec".into(),
                                        Json::Num(*d as f64 / span),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, c, s)| {
                            (
                                n.clone(),
                                Json::Obj(vec![
                                    ("count".into(), Json::Num(*c as f64)),
                                    ("sum".into(), Json::Num(*s as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn windows_hold_deltas_not_totals() {
        let _guard = metrics::test_lock();
        crate::reset();
        let rec = Recorder::new(RecorderConfig {
            tick: Duration::from_millis(10),
            capacity: 4,
        });
        crate::set_enabled(true);
        metrics::TRIE_SEEKS.add(5);
        metrics::POOL_QUEUE_DEPTH.set(3);
        metrics::SUPERVISE_NS.record(1000);
        rec.sample_now();
        metrics::TRIE_SEEKS.add(2);
        rec.sample_now();
        crate::set_enabled(false);

        let ws = rec.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].counter_delta("index.trie.seeks"), 5);
        assert_eq!(ws[1].counter_delta("index.trie.seeks"), 2, "second window sees the delta");
        assert_eq!(ws[0].gauge_level("core.pool.queue_depth"), Some(3));
        let (name, count, sum) = ws[0]
            .histograms
            .iter()
            .find(|(n, _, _)| n == "supervisor.supervise_ns")
            .cloned()
            .unwrap();
        assert_eq!((name.as_str(), count, sum), ("supervisor.supervise_ns", 1, 1000));
        assert!(
            !ws[1].histograms.iter().any(|(n, _, _)| n == "supervisor.supervise_ns"),
            "zero-delta histograms are omitted"
        );
        assert!(ws[1].start_us >= ws[0].end_us.min(ws[1].start_us));
        assert_eq!(ws[0].end_us, ws[1].start_us, "windows tile the timeline");
        crate::reset();
    }

    #[test]
    fn ring_is_bounded_and_reset_does_not_underflow() {
        let _guard = metrics::test_lock();
        crate::reset();
        let rec = Recorder::new(RecorderConfig {
            tick: Duration::from_millis(10),
            capacity: 3,
        });
        crate::set_enabled(true);
        for i in 0..5u64 {
            metrics::TRIE_SEEKS.add(i + 1);
            rec.sample_now();
        }
        // A reset drops lifetime totals below the recorder's baseline;
        // the next delta must saturate to zero, not wrap.
        crate::reset();
        crate::set_enabled(true);
        rec.sample_now();
        crate::set_enabled(false);

        let ws = rec.windows();
        assert_eq!(ws.len(), 3);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(ws[0].index, 3, "indices keep counting across eviction");
        assert_eq!(ws.last().unwrap().counter_delta("index.trie.seeks"), 0);
        crate::reset();
    }

    #[test]
    fn series_json_round_trips() {
        let _guard = metrics::test_lock();
        crate::reset();
        let rec = Recorder::new(RecorderConfig::default());
        crate::set_enabled(true);
        metrics::TRIE_SEEKS.add(4);
        rec.sample_now();
        crate::set_enabled(false);
        let j = rec.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SERIES_SCHEMA));
        let text = j.pretty(2);
        assert_eq!(Json::parse(&text).unwrap(), j, "series JSON must round-trip");
        let w = j.get("windows").and_then(Json::as_arr).unwrap().first().unwrap();
        let seeks = w.get("counters").and_then(|c| c.get("index.trie.seeks")).unwrap();
        assert_eq!(seeks.get("delta").and_then(Json::as_f64), Some(4.0));
        assert!(seeks.get("rate_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        crate::reset();
    }
}
