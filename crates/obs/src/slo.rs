//! SLO tracking: per-query latency objectives with a slow-query log.
//!
//! The paper's premise is *interactive* exploration — an answer that
//! arrives late is an answer the user stopped waiting for — so the
//! operable quantity is not mean latency but "what fraction of queries
//! met the objective, and what did the slow ones look like". The
//! tracker records every governed query keyed by `(engine, rung)`
//! (e.g. `("supervisor", "exact")`, `("session", "wander_join")`),
//! keeps a rolling latency window per key for p50/p95/p99, and when a
//! query breaches its objective it:
//!
//! 1. counts the breach and emits a structured warn event (the
//!    slow-query log),
//! 2. remembers the query's trace id as an **exemplar**, and
//! 3. if capture is enabled and the query was profiled, retains the
//!    full [`ProfileReport`] so the flamegraph is retrievable later
//!    (`/profilez/<trace-id>` on the scrape listener).
//!
//! The tracker is **disarmed by default** and the disarmed fast path is
//! one relaxed atomic load — the same cost model as
//! [`crate::enabled`], keeping the `repro obs-overhead` ≤ 1.05× gate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::events::{self, Level};
use crate::json::Json;
use crate::metrics;
use crate::profile::ProfileReport;

/// Rolling latencies kept per `(engine, rung)` key for percentiles.
const LATENCY_WINDOW: usize = 256;
/// Exemplar trace ids kept per key.
const EXEMPLARS: usize = 8;
/// Breaching trace ids awaiting their profile report.
const PENDING_CAPTURES: usize = 64;
/// Captured slow-query profiles retained, oldest evicted first.
const CAPTURED_PROFILES: usize = 32;

/// Latency objectives and capture behaviour.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Default latency objective for every key.
    pub objective: Duration,
    /// Per-key overrides `(engine, rung, objective)`; first match wins.
    pub overrides: Vec<(String, String, Duration)>,
    /// Retain the [`ProfileReport`] of breaching profiled queries.
    pub capture: bool,
}

impl Default for SloPolicy {
    fn default() -> Self {
        // 250 ms: the interactive-latency bar the supervisor's time
        // budget ladder is tuned for (DESIGN.md §4e).
        SloPolicy { objective: Duration::from_millis(250), overrides: Vec::new(), capture: true }
    }
}

impl SloPolicy {
    /// Objective for a key, honouring overrides.
    pub fn objective_for(&self, engine: &str, rung: &str) -> Duration {
        self.overrides
            .iter()
            .find(|(e, r, _)| e == engine && r == rung)
            .map_or(self.objective, |(_, _, d)| *d)
    }
}

#[derive(Debug)]
struct KeyStats {
    engine: &'static str,
    rung: &'static str,
    count: u64,
    breaches: u64,
    latencies_us: VecDeque<u64>,
    exemplars: VecDeque<u64>,
}

impl KeyStats {
    fn quantile(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = self.latencies_us.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[derive(Debug, Default)]
struct SloState {
    policy: SloPolicy,
    keys: Vec<KeyStats>,
    /// Breaching trace ids whose profile has not been stored yet.
    pending: VecDeque<u64>,
    /// Captured slow-query reports, oldest first.
    captured: VecDeque<ProfileReport>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static CAPTURE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<SloState>> = Mutex::new(None);

fn state() -> std::sync::MutexGuard<'static, Option<SloState>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the tracker with a policy; recording starts immediately.
pub fn arm(policy: SloPolicy) {
    let capture = policy.capture;
    *state() = Some(SloState { policy, ..SloState::default() });
    CAPTURE.store(capture, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm and discard all state (stats, exemplars, captured profiles).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    CAPTURE.store(false, Ordering::Relaxed);
    *state() = None;
}

/// Is the tracker recording? One relaxed load — the disarmed fast path.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Is slow-query profile capture on? Callers that would *start* a
/// profile to make capture possible (e.g. `Session::expand_governed`)
/// gate on this.
#[inline]
pub fn capture_armed() -> bool {
    ARMED.load(Ordering::Relaxed) && CAPTURE.load(Ordering::Relaxed)
}

/// Record one query outcome. `trace` is the query's profile trace id
/// when it ran profiled (see [`crate::profile::current_trace_id`]).
/// Returns whether the latency breached the key's objective.
pub fn record(
    engine: &'static str,
    rung: &'static str,
    latency: Duration,
    trace: Option<u64>,
) -> bool {
    if !armed() {
        return false;
    }
    metrics::SLO_RECORDED.inc();
    let latency_us = latency.as_micros() as u64;
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return false };
    let objective = st.policy.objective_for(engine, rung);
    let breached = latency > objective;
    let capture = breached && st.policy.capture;
    let key = match st.keys.iter_mut().find(|k| k.engine == engine && k.rung == rung) {
        Some(k) => k,
        None => {
            st.keys.push(KeyStats {
                engine,
                rung,
                count: 0,
                breaches: 0,
                latencies_us: VecDeque::new(),
                exemplars: VecDeque::new(),
            });
            st.keys.last_mut().unwrap()
        }
    };
    key.count += 1;
    if key.latencies_us.len() == LATENCY_WINDOW {
        key.latencies_us.pop_front();
    }
    key.latencies_us.push_back(latency_us);
    if breached {
        key.breaches += 1;
        if let Some(t) = trace {
            if key.exemplars.len() == EXEMPLARS {
                key.exemplars.pop_front();
            }
            key.exemplars.push_back(t);
            if capture && !st.pending.contains(&t) {
                if st.pending.len() == PENDING_CAPTURES {
                    st.pending.pop_front();
                }
                st.pending.push_back(t);
            }
        }
    }
    drop(guard);
    if breached {
        metrics::SLO_BREACHES.inc();
        let mut fields = vec![
            ("engine", engine.to_string()),
            ("rung", rung.to_string()),
            ("latency_us", latency_us.to_string()),
            ("objective_us", (objective.as_micros() as u64).to_string()),
        ];
        if let Some(t) = trace {
            fields.push(("trace_id", t.to_string()));
        }
        events::emit_with(Level::Warn, "slo", "latency objective breached", fields);
    }
    breached
}

/// Offer a finished profile to the slow-query log: retained iff its
/// trace id was flagged as breaching by [`record`]. Returns whether it
/// was stored.
pub fn store_profile_if_breached(report: &ProfileReport) -> bool {
    if !capture_armed() {
        return false;
    }
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return false };
    let Some(pos) = st.pending.iter().position(|t| *t == report.trace_id) else {
        return false;
    };
    st.pending.remove(pos);
    if st.captured.len() == CAPTURED_PROFILES {
        st.captured.pop_front();
    }
    st.captured.push_back(report.clone());
    drop(guard);
    metrics::SLO_PROFILES_CAPTURED.inc();
    true
}

/// Captured slow-query profile by trace id, as its v2 JSON document.
pub fn profile_json(trace_id: u64) -> Option<Json> {
    state()
        .as_ref()?
        .captured
        .iter()
        .find(|r| r.trace_id == trace_id)
        .map(ProfileReport::to_json)
}

/// Trace ids of all captured slow-query profiles, oldest first.
pub fn captured_trace_ids() -> Vec<u64> {
    state().as_ref().map_or(Vec::new(), |st| st.captured.iter().map(|r| r.trace_id).collect())
}

/// Rolled-up state of one `(engine, rung)` key.
#[derive(Debug, Clone)]
pub struct KeySummary {
    /// Recording engine ("supervisor", "session").
    pub engine: &'static str,
    /// Supervisor rung or outcome ("exact", "wander_join", ...).
    pub rung: &'static str,
    /// Queries recorded.
    pub count: u64,
    /// Queries over the objective.
    pub breaches: u64,
    /// The key's objective, µs.
    pub objective_us: u64,
    /// Rolling median latency, µs.
    pub p50_us: u64,
    /// Rolling 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Rolling 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Most recent breaching trace ids, oldest first.
    pub exemplars: Vec<u64>,
}

/// Roll up every key, sorted by `(engine, rung)`. Empty when disarmed.
pub fn summary() -> Vec<KeySummary> {
    let guard = state();
    let Some(st) = guard.as_ref() else { return Vec::new() };
    let mut out: Vec<KeySummary> = st
        .keys
        .iter()
        .map(|k| KeySummary {
            engine: k.engine,
            rung: k.rung,
            count: k.count,
            breaches: k.breaches,
            objective_us: st.policy.objective_for(k.engine, k.rung).as_micros() as u64,
            p50_us: k.quantile(0.50),
            p95_us: k.quantile(0.95),
            p99_us: k.quantile(0.99),
            exemplars: k.exemplars.iter().copied().collect(),
        })
        .collect();
    out.sort_by_key(|k| (k.engine, k.rung));
    out
}

/// Render the summary as a JSON document (used by tests and reports;
/// the Prometheus exposition renders the same data as labeled series).
pub fn summary_json() -> Json {
    Json::Obj(vec![
        ("armed".into(), Json::Bool(armed())),
        (
            "keys".into(),
            Json::Arr(
                summary()
                    .iter()
                    .map(|k| {
                        Json::Obj(vec![
                            ("engine".into(), Json::str(k.engine)),
                            ("rung".into(), Json::str(k.rung)),
                            ("count".into(), Json::Num(k.count as f64)),
                            ("breaches".into(), Json::Num(k.breaches as f64)),
                            ("objective_us".into(), Json::Num(k.objective_us as f64)),
                            ("p50_us".into(), Json::Num(k.p50_us as f64)),
                            ("p95_us".into(), Json::Num(k.p95_us as f64)),
                            ("p99_us".into(), Json::Num(k.p99_us as f64)),
                            (
                                "exemplars".into(),
                                Json::Arr(
                                    k.exemplars
                                        .iter()
                                        .map(|t| Json::Num(*t as f64))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::QueryProfile;

    fn quiet() -> std::sync::MutexGuard<'static, ()> {
        let guard = crate::metrics::test_lock();
        events::set_stderr_level(None);
        disarm();
        guard
    }

    #[test]
    fn disarmed_record_is_a_no_op() {
        let _guard = quiet();
        assert!(!record("supervisor", "exact", Duration::from_secs(9), None));
        assert!(summary().is_empty());
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn breaches_count_and_keep_exemplars() {
        let _guard = quiet();
        arm(SloPolicy {
            objective: Duration::from_millis(10),
            overrides: vec![("supervisor".into(), "exact".into(), Duration::from_millis(1))],
            capture: false,
        });
        assert!(!record("supervisor", "wander_join", Duration::from_millis(5), None));
        assert!(record("supervisor", "wander_join", Duration::from_millis(20), Some(7)));
        // The per-key override tightens exact to 1ms.
        assert!(record("supervisor", "exact", Duration::from_millis(5), Some(8)));
        let s = summary();
        assert_eq!(s.len(), 2);
        let exact = &s[0];
        assert_eq!((exact.engine, exact.rung), ("supervisor", "exact"));
        assert_eq!(exact.objective_us, 1_000);
        assert_eq!((exact.count, exact.breaches), (1, 1));
        assert_eq!(exact.exemplars, vec![8]);
        let wj = &s[1];
        assert_eq!((wj.count, wj.breaches), (2, 1));
        assert_eq!(wj.p50_us.min(wj.p95_us), wj.p50_us);
        assert_eq!(wj.exemplars, vec![7]);
        disarm();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn breaching_profiled_query_is_captured_and_retrievable() {
        let _guard = quiet();
        arm(SloPolicy { objective: Duration::ZERO, overrides: Vec::new(), capture: true });
        let profile = QueryProfile::begin("expand:slow");
        let trace = profile.trace_id();
        {
            let _attached = profile.handle().attach("main");
            assert!(record("session", "exact", Duration::from_millis(3), Some(trace)));
        }
        let report = profile.finish();
        assert!(store_profile_if_breached(&report), "breaching trace must be retained");
        assert!(!store_profile_if_breached(&report), "pending entry is consumed");
        assert_eq!(captured_trace_ids(), vec![trace]);
        let j = profile_json(trace).expect("profile retrievable by trace id");
        assert_eq!(
            j.get("trace_id").and_then(Json::as_f64),
            Some(trace as f64)
        );
        assert!(profile_json(trace + 999).is_none());
        // A non-breaching report is not captured.
        let fast = QueryProfile::begin("expand:fast");
        let fast_report = fast.finish();
        assert!(!store_profile_if_breached(&fast_report));
        disarm();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn summary_json_round_trips() {
        let _guard = quiet();
        arm(SloPolicy::default());
        record("session", "exact", Duration::from_millis(1), None);
        let j = summary_json();
        assert_eq!(Json::parse(&j.pretty(2)).unwrap(), j);
        disarm();
        events::set_stderr_level(Some(Level::Warn));
    }
}
