//! Point-in-time export of all telemetry state.
//!
//! [`snapshot`] collects every well-known and registered metric plus
//! the retained events into a [`Snapshot`], which renders to the stable
//! JSON schema [`SCHEMA`] (`kgoa-obs/v1`) or to human-readable text.
//!
//! ## Schema (`kgoa-obs/v1`)
//!
//! ```json
//! {
//!   "schema": "kgoa-obs/v1",
//!   "enabled": true,
//!   "elapsed_us": 12345,
//!   "counters": {"index.trie.seeks": 42, ...},
//!   "gauges": {"core.parallel.active_workers": 0, ...},
//!   "histograms": [
//!     {"name": "...", "count": 9, "sum": 900, "min": 1, "max": 500,
//!      "p50": 63, "p95": 511, "p99": 511}, ...
//!   ],
//!   "events": [
//!     {"seq": 0, "elapsed_us": 17, "level": "info", "target": "supervisor",
//!      "span": "supervisor.supervise_ns", "message": "...",
//!      "fields": {"rung": "exact"}}, ...
//!   ],
//!   "events_dropped": 0
//! }
//! ```
//!
//! Counters and gauges are sorted by name; histograms with zero samples
//! are omitted; additive changes only within `v1`.

use crate::events::{self, Event};
use crate::json::Json;
use crate::metrics;
use crate::registry::Registry;

/// Schema identifier stamped into every JSON snapshot.
pub const SCHEMA: &str = "kgoa-obs/v1";

/// Exported state of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (log-bucket approximation).
    pub p50: u64,
    /// 95th percentile (log-bucket approximation).
    pub p95: u64,
    /// 99th percentile (log-bucket approximation).
    pub p99: u64,
}

/// A point-in-time copy of all telemetry state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Whether metric recording was enabled at capture time.
    pub enabled: bool,
    /// Microseconds since [`crate::epoch`] at capture time.
    pub elapsed_us: u64,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms with at least one sample, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before capture.
    pub events_dropped: u64,
}

/// Capture all telemetry state (well-known statics, dynamic registry,
/// event ring) right now.
pub fn snapshot() -> Snapshot {
    let reg = Registry::global();
    let mut counters: Vec<(String, u64)> = metrics::COUNTERS
        .iter()
        .copied()
        .chain(reg.counters())
        .map(|c| (c.name().to_owned(), c.get()))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = metrics::GAUGES
        .iter()
        .copied()
        .chain(reg.gauges())
        .map(|g| (g.name().to_owned(), g.get()))
        .collect();
    gauges.sort();
    let mut histograms: Vec<HistogramSnapshot> = metrics::HISTOGRAMS
        .iter()
        .copied()
        .chain(reg.histograms())
        .filter(|h| h.count() > 0)
        .map(|h| HistogramSnapshot {
            name: h.name().to_owned(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot {
        enabled: crate::enabled(),
        elapsed_us: crate::elapsed_us(),
        counters,
        gauges,
        histograms,
        events: events::recent(),
        events_dropped: events::dropped(),
    }
}

impl Snapshot {
    /// Render to the [`SCHEMA`] JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("enabled".into(), Json::Bool(self.enabled)),
            ("elapsed_us".into(), Json::Num(self.elapsed_us as f64)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))).collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&h.name)),
                                ("count".into(), Json::Num(h.count as f64)),
                                ("sum".into(), Json::Num(h.sum as f64)),
                                ("min".into(), Json::Num(h.min as f64)),
                                ("max".into(), Json::Num(h.max as f64)),
                                ("p50".into(), Json::Num(h.p50 as f64)),
                                ("p95".into(), Json::Num(h.p95 as f64)),
                                ("p99".into(), Json::Num(h.p99 as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events".into(),
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("seq".into(), Json::Num(e.seq as f64)),
                                ("elapsed_us".into(), Json::Num(e.elapsed_us as f64)),
                                ("level".into(), Json::str(e.level.as_str())),
                                ("target".into(), Json::str(e.target)),
                                (
                                    "span".into(),
                                    e.span.map_or(Json::Null, Json::str),
                                ),
                                ("message".into(), Json::str(&e.message)),
                                (
                                    "fields".into(),
                                    Json::Obj(
                                        e.fields
                                            .iter()
                                            .map(|(k, v)| ((*k).to_owned(), Json::str(v)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("events_dropped".into(), Json::Num(self.events_dropped as f64)),
        ])
    }

    /// Render a compact human-readable report (non-zero metrics only).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry snapshot ({} at +{}us)\n",
            if self.enabled { "enabled" } else { "disabled" },
            self.elapsed_us
        ));
        out.push_str("counters:\n");
        for (n, v) in self.counters.iter().filter(|(_, v)| *v > 0) {
            out.push_str(&format!("  {n:<40} {v}\n"));
        }
        for (n, v) in self.gauges.iter().filter(|(_, v)| *v != 0) {
            out.push_str(&format!("  {n:<40} {v} (gauge)\n"));
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / p50 / p95 / p99 / max):\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<40} {} / {} / {} / {} / {}\n",
                    h.name, h.count, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        if !self.events.is_empty() {
            out.push_str(&format!(
                "events ({} retained, {} dropped):\n",
                self.events.len(),
                self.events_dropped
            ));
            for e in &self.events {
                let kv: Vec<String> =
                    e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                out.push_str(&format!(
                    "  +{:>8}us [{:<5}] {}: {}{}\n",
                    e.elapsed_us,
                    e.level.as_str(),
                    e.target,
                    e.message,
                    if kv.is_empty() { String::new() } else { format!(" ({})", kv.join(", ")) },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Level;

    #[test]
    fn snapshot_serialises_and_round_trips() {
        let _guard = crate::metrics::test_lock();
        crate::reset();
        crate::set_enabled(true);
        metrics::TRIE_SEEKS.add(7);
        metrics::SUPERVISE_NS.record(1500);
        events::set_stderr_level(None);
        events::emit_with(
            Level::Info,
            "supervisor",
            "served exact",
            vec![("rung", "exact".into())],
        );
        crate::set_enabled(false);
        events::set_stderr_level(Some(Level::Warn));

        let snap = snapshot();
        assert!(snap.counters.iter().any(|(n, v)| n == "index.trie.seeks" && *v == 7));
        assert_eq!(snap.histograms.len(), 1, "only non-empty histograms exported");
        let j = snap.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let text = j.pretty(2);
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed, j, "snapshot JSON must round-trip");
        // The counters object is sorted by name.
        let names: Vec<&str> = reparsed
            .get("counters")
            .and_then(Json::as_obj)
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // Events carry their structured fields through.
        let events = reparsed.get("events").and_then(Json::as_arr).unwrap();
        let last = events.last().unwrap();
        assert_eq!(
            last.get("fields").and_then(|f| f.get("rung")).and_then(Json::as_str),
            Some("exact")
        );
        // Text rendering mentions the non-zero counter.
        assert!(snap.to_text().contains("index.trie.seeks"));
        crate::reset();
    }
}
