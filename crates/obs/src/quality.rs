//! Estimator-quality plane: convergence telemetry, empirical CI
//! coverage, and stats-drift detection.
//!
//! The latency/liveness plane ([`crate::slo`], [`crate::watchdog`])
//! tells us whether answers arrive on time; nothing there tells us
//! whether the answers are any *good*. The paper's contract is honest
//! anytime estimates — confidence intervals that cover the truth at
//! their nominal rate and shrink as walks accumulate — so this module
//! tracks three statistical signals:
//!
//! 1. **Convergence** — per `(engine, rung)` rolling rings of
//!    time-to-±`ci_target_rel`-relative-CI and half-width-trajectory
//!    slope, fed from `run_parallel_streaming` snapshots and
//!    [`ConvergenceTrace`]s ([`record_convergence`], [`record_trace`]).
//! 2. **Coverage** — the empirical fraction of audited per-group CIs
//!    that contained the exact truth ([`record_audit`]), maintained by
//!    the background coverage auditor in `kgoa-core`.
//! 3. **Stats drift** — per-predicate walk rejection/tip-rate deltas
//!    across epochs ([`record_predicate_rates`]): after a delta→main
//!    merge the index statistics that picked walk orders and tipping
//!    thresholds may be stale, and that staleness shows up as a step
//!    change in observed rejection rates on the new epoch.
//!
//! All three surface as well-known gauges/counters (sampled into
//! recorder windows, where the `coverage_below_nominal` and
//! `stats_drift` watchdog rules read them), as labeled Prometheus
//! series, and as the `/quality` JSON document ([`summary_json`]).
//!
//! Like the SLO tracker, the plane is **disarmed by default** and the
//! disarmed fast path is one relaxed atomic load, preserving the
//! `repro obs-overhead` ≤ 1.05× budget.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::events::{self, Level};
use crate::json::Json;
use crate::metrics;
use crate::trace::{ConvergenceTrace, TracePoint};

/// Rolling samples kept per `(engine, rung)` convergence key.
const RING: usize = 64;

/// Quality targets and drift thresholds.
#[derive(Debug, Clone)]
pub struct QualityPolicy {
    /// Relative CI target: a run "converged" at the first sample whose
    /// mean half-width is ≤ this fraction of the point estimate.
    pub ci_target_rel: f64,
    /// Nominal coverage of the estimators' CIs (0.95 for the paper's
    /// 95% intervals); exported for dashboards and the `repro quality`
    /// gate, not enforced here.
    pub nominal_coverage: f64,
    /// Minimum walks a predicate needs on *both* epochs before its
    /// rate delta participates in drift detection.
    pub drift_min_walks: u64,
    /// Rate delta (basis points of rejection/tip probability) at and
    /// above which a predicate counts as drifted.
    pub drift_limit_bp: i64,
}

impl Default for QualityPolicy {
    fn default() -> Self {
        QualityPolicy {
            ci_target_rel: 0.05,
            nominal_coverage: 0.95,
            drift_min_walks: 64,
            drift_limit_bp: 1_500,
        }
    }
}

#[derive(Debug)]
struct ConvKey {
    engine: &'static str,
    rung: &'static str,
    runs: u64,
    converged: u64,
    time_to_ci_us: VecDeque<u64>,
    slopes: VecDeque<f64>,
}

fn ring_quantile_u64(ring: &VecDeque<u64>, q: f64) -> u64 {
    if ring.is_empty() {
        return 0;
    }
    let mut sorted: Vec<u64> = ring.iter().copied().collect();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn ring_median_f64(ring: &VecDeque<f64>) -> f64 {
    if ring.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = ring.iter().copied().collect();
    sorted.sort_by(f64::total_cmp);
    sorted[(sorted.len() - 1) / 2]
}

#[derive(Debug, Default, Clone)]
struct RateAcc {
    walks: u64,
    rejected: u64,
    tipped: u64,
}

#[derive(Debug)]
struct DriftEpoch {
    epoch: u64,
    rates: Vec<(u32, RateAcc)>,
}

#[derive(Debug, Default)]
struct QualityState {
    policy: QualityPolicy,
    keys: Vec<ConvKey>,
    audited: u64,
    covered: u64,
    /// Rates for the last *completed* epoch (drift baseline).
    last: Option<DriftEpoch>,
    /// Rates accumulating for the epoch currently being observed.
    cur: Option<DriftEpoch>,
    max_drift_bp: i64,
    drifted: Vec<u32>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<QualityState>> = Mutex::new(None);

fn state() -> std::sync::MutexGuard<'static, Option<QualityState>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the quality plane with a policy; recording starts immediately.
pub fn arm(policy: QualityPolicy) {
    *state() = Some(QualityState { policy, ..QualityState::default() });
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm and discard all state (rings, coverage, drift baselines).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    *state() = None;
}

/// Is the plane recording? One relaxed load — the disarmed fast path
/// taken by `run_parallel_streaming`, the session hooks, and the
/// coverage auditor's offer path.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Canonical rung name for an estimator algo tag ("wj", "aj", ...).
fn rung_for_algo(algo: &str) -> &'static str {
    match algo {
        "wj" | "wander_join" => "wander_join",
        "aj" | "audit_join" => "audit_join",
        _ => "other",
    }
}

/// Record one estimator run's convergence trajectory under an
/// `(engine, rung)` key. `points` are in walk order; the run counts as
/// converged at the first point whose mean CI half-width is within the
/// policy's relative target of the point estimate.
pub fn record_convergence(engine: &'static str, rung: &'static str, points: &[TracePoint]) {
    if !armed() || points.is_empty() {
        return;
    }
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    let target = st.policy.ci_target_rel;
    let converged_at = points
        .iter()
        .find(|p| p.estimate > 0.0 && p.ci_half_width.is_finite() && p.ci_half_width <= target * p.estimate)
        .map(|p| p.elapsed.as_micros() as u64);
    let slope = match (points.first(), points.last()) {
        (Some(a), Some(b)) if points.len() >= 2 => {
            let dt = (b.elapsed.saturating_sub(a.elapsed)).as_secs_f64();
            let dw = a.ci_half_width - b.ci_half_width;
            (dt > 0.0 && dw.is_finite()).then(|| dw / dt)
        }
        _ => None,
    };
    let key = match st.keys.iter_mut().find(|k| k.engine == engine && k.rung == rung) {
        Some(k) => k,
        None => {
            st.keys.push(ConvKey {
                engine,
                rung,
                runs: 0,
                converged: 0,
                time_to_ci_us: VecDeque::new(),
                slopes: VecDeque::new(),
            });
            st.keys.last_mut().unwrap()
        }
    };
    key.runs += 1;
    if let Some(us) = converged_at {
        key.converged += 1;
        if key.time_to_ci_us.len() == RING {
            key.time_to_ci_us.pop_front();
        }
        key.time_to_ci_us.push_back(us);
    }
    if let Some(s) = slope {
        if key.slopes.len() == RING {
            key.slopes.pop_front();
        }
        key.slopes.push_back(s);
    }
    drop(guard);
    metrics::QUALITY_RUNS.inc();
    if let Some(us) = converged_at {
        metrics::QUALITY_CONVERGED.inc();
        metrics::QUALITY_TIME_TO_CI_US.record(us);
    }
}

/// Record a [`ConvergenceTrace`] (the traced single-thread path),
/// mapping its algo tag to a canonical rung name.
pub fn record_trace(engine: &'static str, trace: &ConvergenceTrace) {
    if !armed() {
        return;
    }
    record_convergence(engine, rung_for_algo(&trace.algo), &trace.points);
}

/// Record one completed coverage audit: `audited` per-group CIs were
/// checked against exact truth and `covered` of them contained it.
/// `detail` names the audited chart in the miss event. Updates the
/// running coverage gauge read by the `coverage_below_nominal`
/// watchdog rule.
pub fn record_audit(covered: u64, audited: u64, detail: &str) {
    if !armed() || audited == 0 {
        return;
    }
    let covered = covered.min(audited);
    let (total_audited, total_covered, nominal) = {
        let mut guard = state();
        let Some(st) = guard.as_mut() else { return };
        st.audited += audited;
        st.covered += covered;
        (st.audited, st.covered, st.policy.nominal_coverage)
    };
    metrics::QUALITY_AUDITS.inc();
    let misses = audited - covered;
    if misses > 0 {
        metrics::QUALITY_AUDIT_MISSES.add(misses);
        events::emit_with(
            Level::Warn,
            "quality",
            "audited confidence interval missed exact truth",
            vec![
                ("chart", detail.to_string()),
                ("missed_groups", misses.to_string()),
                ("audited_groups", audited.to_string()),
                ("nominal", format!("{nominal:.2}")),
            ],
        );
    }
    metrics::QUALITY_AUDITED_GROUPS.set(total_audited as i64);
    let bp = (total_covered as f64 / total_audited as f64 * 10_000.0).round() as i64;
    metrics::QUALITY_COVERAGE_BP.set(bp);
}

/// Running coverage as `(covered, audited)` per-group CI totals; `None`
/// when disarmed or before the first audit completes.
pub fn coverage() -> Option<(u64, u64)> {
    let guard = state();
    let st = guard.as_ref()?;
    (st.audited > 0).then_some((st.covered, st.audited))
}

/// Observed walk rates for one predicate on one epoch.
#[derive(Debug, Clone, Copy)]
pub struct PredicateRates {
    /// Raw term id of the (constant) predicate.
    pub predicate: u32,
    /// Walks attributed to queries binding this predicate.
    pub walks: u64,
    /// Of those, walks rejected at a dead end.
    pub rejected: u64,
    /// Of those, walks that tipped to an exact suffix (AJ only).
    pub tipped: u64,
}

/// Record observed per-predicate walk rates for `epoch`. When `epoch`
/// advances, the previous epoch's accumulated rates become the drift
/// baseline; thereafter every call recomputes the largest
/// rejection/tip-rate delta (basis points) between the current epoch
/// and the baseline over predicates with enough walks on both sides,
/// exporting it as the `obs.quality.stats_drift_bp` gauge the
/// `stats_drift` watchdog rule reads.
pub fn record_predicate_rates(epoch: u64, rates: &[PredicateRates]) {
    if !armed() || rates.is_empty() {
        return;
    }
    let mut guard = state();
    let Some(st) = guard.as_mut() else { return };
    if st.cur.as_ref().is_some_and(|c| c.epoch != epoch) {
        st.last = st.cur.take();
    }
    let cur = st.cur.get_or_insert_with(|| DriftEpoch { epoch, rates: Vec::new() });
    for r in rates {
        let acc = match cur.rates.iter_mut().find(|(p, _)| *p == r.predicate) {
            Some((_, acc)) => acc,
            None => {
                cur.rates.push((r.predicate, RateAcc::default()));
                &mut cur.rates.last_mut().unwrap().1
            }
        };
        acc.walks += r.walks;
        acc.rejected += r.rejected;
        acc.tipped += r.tipped;
    }
    // Recompute drift of the current epoch against the baseline.
    let min_walks = st.policy.drift_min_walks.max(1);
    let limit = st.policy.drift_limit_bp;
    let mut max_bp = 0i64;
    let mut drifted = Vec::new();
    if let (Some(last), Some(cur)) = (st.last.as_ref(), st.cur.as_ref()) {
        for (p, now) in &cur.rates {
            if now.walks < min_walks {
                continue;
            }
            let Some((_, base)) = last.rates.iter().find(|(bp, _)| bp == p) else { continue };
            if base.walks < min_walks {
                continue;
            }
            let rate = |acc: &RateAcc, v: u64| v as f64 / acc.walks as f64;
            let d_rej = (rate(now, now.rejected) - rate(base, base.rejected)).abs();
            let d_tip = (rate(now, now.tipped) - rate(base, base.tipped)).abs();
            let bp = (d_rej.max(d_tip) * 10_000.0).round() as i64;
            max_bp = max_bp.max(bp);
            if bp >= limit {
                drifted.push(*p);
            }
        }
    }
    drifted.sort_unstable();
    let newly: Vec<u32> = drifted.iter().copied().filter(|p| !st.drifted.contains(p)).collect();
    st.max_drift_bp = max_bp;
    st.drifted = drifted;
    let (cur_epoch, last_epoch) =
        (st.cur.as_ref().map(|c| c.epoch), st.last.as_ref().map(|l| l.epoch));
    let n_drifted = st.drifted.len();
    drop(guard);
    metrics::QUALITY_STATS_DRIFT_BP.set(max_bp);
    metrics::QUALITY_DRIFTED_PREDICATES.set(n_drifted as i64);
    if !newly.is_empty() {
        events::emit_with(
            Level::Warn,
            "quality",
            "predicate walk-rate drift exceeds limit (stale stats after merge?)",
            vec![
                ("predicates", format!("{newly:?}")),
                ("max_delta_bp", max_bp.to_string()),
                ("limit_bp", limit.to_string()),
                ("epoch", cur_epoch.map_or_else(String::new, |e| e.to_string())),
                ("baseline_epoch", last_epoch.map_or_else(String::new, |e| e.to_string())),
            ],
        );
    }
}

/// Rolled-up convergence state of one `(engine, rung)` key.
#[derive(Debug, Clone)]
pub struct ConvergenceSummary {
    /// Recording engine ("parallel", "traced", "session").
    pub engine: &'static str,
    /// Estimator rung ("wander_join", "audit_join", ...).
    pub rung: &'static str,
    /// Runs recorded.
    pub runs: u64,
    /// Runs that reached the relative-CI target.
    pub converged: u64,
    /// Rolling median time-to-target, µs (0 when none converged).
    pub p50_time_to_ci_us: u64,
    /// Rolling 95th-percentile time-to-target, µs.
    pub p95_time_to_ci_us: u64,
    /// Rolling median half-width shrink rate (absolute width/sec;
    /// positive = shrinking).
    pub p50_slope_per_sec: f64,
}

/// Roll up every convergence key, sorted by `(engine, rung)`. Empty
/// when disarmed.
pub fn convergence_summary() -> Vec<ConvergenceSummary> {
    let guard = state();
    let Some(st) = guard.as_ref() else { return Vec::new() };
    let mut out: Vec<ConvergenceSummary> = st
        .keys
        .iter()
        .map(|k| ConvergenceSummary {
            engine: k.engine,
            rung: k.rung,
            runs: k.runs,
            converged: k.converged,
            p50_time_to_ci_us: ring_quantile_u64(&k.time_to_ci_us, 0.50),
            p95_time_to_ci_us: ring_quantile_u64(&k.time_to_ci_us, 0.95),
            p50_slope_per_sec: ring_median_f64(&k.slopes),
        })
        .collect();
    out.sort_by_key(|k| (k.engine, k.rung));
    out
}

/// Schema identifier of the `/quality` JSON document.
pub const QUALITY_SCHEMA: &str = "kgoa-obs/quality-v1";

/// Render the full quality-plane state as the `/quality` JSON document.
pub fn summary_json() -> Json {
    let guard = state();
    let (policy, audited, covered, max_drift_bp, drifted, cur_epoch, last_epoch) = match guard
        .as_ref()
    {
        Some(st) => (
            st.policy.clone(),
            st.audited,
            st.covered,
            st.max_drift_bp,
            st.drifted.clone(),
            st.cur.as_ref().map(|c| c.epoch),
            st.last.as_ref().map(|l| l.epoch),
        ),
        None => (QualityPolicy::default(), 0, 0, 0, Vec::new(), None, None),
    };
    drop(guard);
    let coverage = if audited > 0 { covered as f64 / audited as f64 } else { 0.0 };
    let opt_epoch = |e: Option<u64>| e.map_or(Json::Null, |v| Json::Num(v as f64));
    Json::Obj(vec![
        ("schema".into(), Json::str(QUALITY_SCHEMA)),
        ("armed".into(), Json::Bool(armed())),
        (
            "policy".into(),
            Json::Obj(vec![
                ("ci_target_rel".into(), Json::Num(policy.ci_target_rel)),
                ("nominal_coverage".into(), Json::Num(policy.nominal_coverage)),
                ("drift_min_walks".into(), Json::Num(policy.drift_min_walks as f64)),
                ("drift_limit_bp".into(), Json::Num(policy.drift_limit_bp as f64)),
            ]),
        ),
        (
            "convergence".into(),
            Json::Arr(
                convergence_summary()
                    .iter()
                    .map(|k| {
                        Json::Obj(vec![
                            ("engine".into(), Json::str(k.engine)),
                            ("rung".into(), Json::str(k.rung)),
                            ("runs".into(), Json::Num(k.runs as f64)),
                            ("converged".into(), Json::Num(k.converged as f64)),
                            ("p50_time_to_ci_us".into(), Json::Num(k.p50_time_to_ci_us as f64)),
                            ("p95_time_to_ci_us".into(), Json::Num(k.p95_time_to_ci_us as f64)),
                            ("p50_slope_per_sec".into(), Json::Num(k.p50_slope_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "coverage".into(),
            Json::Obj(vec![
                ("audited_groups".into(), Json::Num(audited as f64)),
                ("covered_groups".into(), Json::Num(covered as f64)),
                ("coverage".into(), Json::Num(coverage)),
                ("nominal".into(), Json::Num(policy.nominal_coverage)),
            ]),
        ),
        (
            "drift".into(),
            Json::Obj(vec![
                ("epoch".into(), opt_epoch(cur_epoch)),
                ("baseline_epoch".into(), opt_epoch(last_epoch)),
                ("max_delta_bp".into(), Json::Num(max_drift_bp as f64)),
                ("limit_bp".into(), Json::Num(policy.drift_limit_bp as f64)),
                (
                    "drifted_predicates".into(),
                    Json::Arr(drifted.iter().map(|p| Json::Num(*p as f64)).collect()),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quiet() -> std::sync::MutexGuard<'static, ()> {
        let guard = crate::metrics::test_lock();
        events::set_stderr_level(None);
        disarm();
        guard
    }

    fn pt(walks: u64, estimate: f64, hw: f64, us: u64) -> TracePoint {
        TracePoint { walks, estimate, ci_half_width: hw, elapsed: Duration::from_micros(us) }
    }

    #[test]
    fn disarmed_everything_is_a_no_op() {
        let _guard = quiet();
        record_convergence("parallel", "wander_join", &[pt(10, 100.0, 1.0, 5)]);
        record_audit(1, 1, "q");
        record_predicate_rates(0, &[PredicateRates { predicate: 1, walks: 100, rejected: 5, tipped: 0 }]);
        assert!(convergence_summary().is_empty());
        assert!(coverage().is_none());
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn convergence_time_and_slope_recorded() {
        let _guard = quiet();
        crate::set_enabled(true);
        arm(QualityPolicy::default());
        // Converges at the third point: 4.0 <= 0.05 * 100.
        record_convergence(
            "parallel",
            "audit_join",
            &[pt(64, 90.0, 30.0, 100), pt(128, 95.0, 10.0, 200), pt(256, 100.0, 4.0, 300)],
        );
        // Never converges (half-width stays wide).
        record_convergence("parallel", "audit_join", &[pt(64, 90.0, 30.0, 100), pt(128, 95.0, 20.0, 400)]);
        let s = convergence_summary();
        assert_eq!(s.len(), 1);
        assert_eq!((s[0].engine, s[0].rung), ("parallel", "audit_join"));
        assert_eq!((s[0].runs, s[0].converged), (2, 1));
        assert_eq!(s[0].p50_time_to_ci_us, 300);
        assert!(s[0].p50_slope_per_sec > 0.0, "shrinking trajectories have positive slope");
        crate::set_enabled(false);
        disarm();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn trace_algo_maps_to_rung() {
        let _guard = quiet();
        arm(QualityPolicy::default());
        let mut t = ConvergenceTrace::new("wj", "q01");
        t.record(100, 50.0, 1.0, Duration::from_micros(10));
        record_trace("traced", &t);
        let s = convergence_summary();
        assert_eq!(s.len(), 1);
        assert_eq!((s[0].engine, s[0].rung), ("traced", "wander_join"));
        disarm();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn coverage_accumulates_and_exports_gauge() {
        let _guard = quiet();
        crate::set_enabled(true);
        arm(QualityPolicy::default());
        record_audit(3, 3, "q1");
        record_audit(1, 2, "q2"); // one miss -> warn event + miss counter
        assert_eq!(coverage(), Some((4, 5)));
        assert_eq!(metrics::QUALITY_COVERAGE_BP.get(), 8_000);
        assert_eq!(metrics::QUALITY_AUDITED_GROUPS.get(), 5);
        assert!(metrics::QUALITY_AUDIT_MISSES.get() >= 1);
        crate::set_enabled(false);
        disarm();
        crate::reset();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn drift_compares_epochs_and_flags_predicates() {
        let _guard = quiet();
        crate::set_enabled(true);
        arm(QualityPolicy { drift_min_walks: 10, drift_limit_bp: 1_000, ..QualityPolicy::default() });
        let r = |p: u32, w: u64, rej: u64| PredicateRates { predicate: p, walks: w, rejected: rej, tipped: 0 };
        // Epoch 3: predicate 7 rejects 10%, predicate 9 rejects 50%.
        record_predicate_rates(3, &[r(7, 100, 10), r(9, 100, 50)]);
        assert_eq!(metrics::QUALITY_STATS_DRIFT_BP.get(), 0, "no baseline yet");
        // Epoch 5: predicate 7 jumps to 60% (+5000bp), 9 stays put.
        record_predicate_rates(5, &[r(7, 100, 60), r(9, 100, 50)]);
        assert_eq!(metrics::QUALITY_STATS_DRIFT_BP.get(), 5_000);
        assert_eq!(metrics::QUALITY_DRIFTED_PREDICATES.get(), 1);
        let j = summary_json();
        let drift = j.get("drift").unwrap();
        assert_eq!(drift.get("max_delta_bp").and_then(Json::as_f64), Some(5_000.0));
        assert_eq!(drift.get("epoch").and_then(Json::as_f64), Some(5.0));
        assert_eq!(drift.get("baseline_epoch").and_then(Json::as_f64), Some(3.0));
        let flagged = drift.get("drifted_predicates").and_then(Json::as_arr).unwrap();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].as_f64(), Some(7.0));
        crate::set_enabled(false);
        disarm();
        crate::reset();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn drift_ignores_thin_predicates() {
        let _guard = quiet();
        crate::set_enabled(true);
        arm(QualityPolicy { drift_min_walks: 50, drift_limit_bp: 1_000, ..QualityPolicy::default() });
        let r = |p: u32, w: u64, rej: u64| PredicateRates { predicate: p, walks: w, rejected: rej, tipped: 0 };
        record_predicate_rates(1, &[r(7, 10, 0)]);
        record_predicate_rates(2, &[r(7, 10, 10)]); // 0% -> 100%, but only 10 walks
        assert_eq!(metrics::QUALITY_STATS_DRIFT_BP.get(), 0);
        crate::set_enabled(false);
        disarm();
        crate::reset();
        events::set_stderr_level(Some(Level::Warn));
    }

    #[test]
    fn summary_json_round_trips() {
        let _guard = quiet();
        arm(QualityPolicy::default());
        record_convergence("parallel", "wander_join", &[pt(64, 100.0, 1.0, 50)]);
        record_audit(2, 2, "q");
        let j = summary_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(QUALITY_SCHEMA));
        assert_eq!(Json::parse(&j.pretty(2)).unwrap(), j);
        disarm();
        events::set_stderr_level(Some(Level::Warn));
    }
}
