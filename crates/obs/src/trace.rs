//! Convergence traces for online-aggregation estimators.
//!
//! The paper's promise is *anytime* answers: estimates whose confidence
//! intervals shrink as walks accumulate. A [`ConvergenceTrace`] records
//! that trajectory — one [`TracePoint`] per walk batch with the walk
//! count, the current estimate, the mean CI half-width, and elapsed
//! wall time — so convergence can be plotted or asserted on instead of
//! eyeballed.

use std::time::Duration;

use crate::json::Json;

/// One sample of an estimator's state after a batch of walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Walks completed so far (accepted + rejected).
    pub walks: u64,
    /// Current point estimate (for grouped estimators, the sum over
    /// groups — total estimated count).
    pub estimate: f64,
    /// Mean 95% CI half-width across groups (absolute units).
    pub ci_half_width: f64,
    /// Wall time since the run started.
    pub elapsed: Duration,
}

/// A recorded convergence trajectory for one estimator run.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTrace {
    /// Estimator name ("wj", "aj", ...).
    pub algo: String,
    /// Query or workload identifier this trace belongs to.
    pub query: String,
    /// Samples, in walk order.
    pub points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// New empty trace.
    pub fn new(algo: impl Into<String>, query: impl Into<String>) -> ConvergenceTrace {
        ConvergenceTrace { algo: algo.into(), query: query.into(), points: Vec::new() }
    }

    /// Append one sample.
    pub fn record(&mut self, walks: u64, estimate: f64, ci_half_width: f64, elapsed: Duration) {
        self.points.push(TracePoint { walks, estimate, ci_half_width, elapsed });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Did the mean CI half-width shrink from the first to the last
    /// sample? (The headline "convergence" check; `false` for traces
    /// with fewer than two points.)
    pub fn ci_shrank(&self) -> bool {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if self.points.len() >= 2 => b.ci_half_width <= a.ci_half_width,
            _ => false,
        }
    }

    /// JSON form: `{algo, query, points: [{walks, estimate,
    /// ci_half_width, elapsed_us}]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("algo".into(), Json::str(&self.algo)),
            ("query".into(), Json::str(&self.query)),
            (
                "points".into(),
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("walks".into(), Json::Num(p.walks as f64)),
                                ("estimate".into(), Json::Num(p.estimate)),
                                ("ci_half_width".into(), Json::Num(p.ci_half_width)),
                                ("elapsed_us".into(), Json::Num(p.elapsed.as_micros() as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serialises() {
        let mut t = ConvergenceTrace::new("aj", "q01");
        assert!(t.is_empty());
        assert!(!t.ci_shrank());
        t.record(100, 50.0, 8.0, Duration::from_micros(300));
        t.record(200, 52.0, 5.0, Duration::from_micros(700));
        assert_eq!(t.len(), 2);
        assert!(t.ci_shrank());
        let j = t.to_json();
        assert_eq!(j.get("algo").and_then(Json::as_str), Some("aj"));
        let points = j.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("walks").and_then(Json::as_f64), Some(200.0));
        assert_eq!(points[1].get("elapsed_us").and_then(Json::as_f64), Some(700.0));
        // Round-trips through the parser.
        let reparsed = Json::parse(&j.render()).unwrap();
        assert_eq!(reparsed, j);
    }
}
