//! # kgoa-obs
//!
//! Zero-dependency telemetry for the kgoa workspace: an atomic metrics
//! registry ([`Counter`], [`Gauge`], log-bucketed [`Histogram`] with
//! p50/p95/p99), RAII [`Span`] timers with a thread-local span stack, a
//! leveled ring-buffered [event log](events), a [`ConvergenceTrace`]
//! recorder for online-aggregation estimators, a per-query
//! [profiler](profile) ([`QueryProfile`] span trees with operator
//! counters, schema [`profile::PROFILE_SCHEMA`]), and a stable JSON
//! [snapshot](snapshot) (schema [`snapshot::SCHEMA`]) plus a
//! human-readable text rendering.
//!
//! On top of the in-process instruments sits the observability plane:
//! a windowed time-series [recorder](recorder) (schema
//! [`recorder::SERIES_SCHEMA`]), a Prometheus text
//! [exposition](export) with an optional `std::net` scrape listener
//! (feature `obs-http`), an [SLO tracker](slo) with a slow-query log
//! and automatic profile capture, and a rule-based stall
//! [watchdog](watchdog) behind `/healthz`.
//!
//! ## Cost model
//!
//! Telemetry is **disabled by default**. Every metric mutation first
//! loads one global `AtomicBool` with `Ordering::Relaxed` and branches —
//! on the disabled path that is the *entire* cost, so instrumented hot
//! loops (trie seeks, sample draws, LFTJ probes) stay within the < 5%
//! overhead budget documented in DESIGN.md. Call [`set_enabled`]`(true)`
//! to start recording. The [event log](events) is *not* gated: events
//! are rare by construction (fallbacks, rung transitions, panics) and
//! must not disappear when metrics are off, since they replace the
//! previous ad-hoc `eprintln!` diagnostics.
//!
//! ## Naming convention
//!
//! Metric names are `<crate>.<component>.<metric>` (e.g.
//! `index.trie.seeks`, `engine.ctj.cache_hits`, `core.walks.rejected`),
//! lowercase, dot-separated, with `_ns` / `_us` suffixes for durations.
//!
//! All state is process-global and lock-free on the write path; use
//! [`reset`] between measurement windows.

#![warn(missing_docs)]

pub mod events;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod quality;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod trace;
pub mod watchdog;

pub use events::{Event, Level};
#[cfg(feature = "obs-http")]
pub use export::ObsServer;
pub use export::{check_exposition, render_prometheus, ExpositionSummary};
pub use json::{Json, JsonError};
pub use metrics::{Counter, Gauge, Histogram};
pub use profile::{ProfileHandle, ProfileReport, QueryProfile, SpanNode, PROFILE_SCHEMA};
pub use quality::{ConvergenceSummary, PredicateRates, QualityPolicy, QUALITY_SCHEMA};
pub use recorder::{Recorder, RecorderConfig, Window, SERIES_SCHEMA};
pub use registry::Registry;
pub use slo::{SloPolicy, KeySummary};
pub use snapshot::{snapshot, HistogramSnapshot, Snapshot, SCHEMA};
pub use span::Span;
pub use trace::{ConvergenceTrace, TracePoint};
pub use watchdog::{HealthReport, Verdict, WatchdogConfig};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metric recording enabled? One relaxed atomic load — this is the
/// fast path every instrumented hot loop takes when telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Monotonic process epoch: the first call pins `Instant::now()` and all
/// later calls measure from it. Event timestamps and snapshots use this
/// so readings are comparable within a process.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`epoch`].
pub fn elapsed_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Zero every well-known and dynamically-registered metric and clear the
/// event ring. The enabled flag is left as-is. Use between measurement
/// windows (e.g. per `repro` experiment).
pub fn reset() {
    for c in metrics::COUNTERS {
        c.reset();
    }
    for g in metrics::GAUGES {
        g.reset();
    }
    for h in metrics::HISTOGRAMS {
        h.reset();
    }
    registry::Registry::global().reset();
    events::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_round_trips() {
        // Serialise against other tests that toggle the global flag.
        let _guard = crate::metrics::test_lock();
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn epoch_is_monotone() {
        let a = elapsed_us();
        let b = elapsed_us();
        assert!(b >= a);
    }
}
