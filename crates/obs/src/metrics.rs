//! Atomic metric primitives — [`Counter`], [`Gauge`], [`Histogram`] —
//! plus the workspace's well-known static metrics.
//!
//! All three types have `const` constructors so instrumented crates
//! declare them as `static`s with zero init cost, and all writes are
//! relaxed atomics gated on [`crate::enabled`]: disabled-mode cost is
//! one load + branch.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

const R: Ordering = Ordering::Relaxed;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// New zeroed counter. `name` follows `<crate>.<component>.<metric>`.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add 1 (no-op while telemetry is disabled).
    #[inline(always)]
    pub fn inc(&self) {
        if crate::enabled() {
            self.value.fetch_add(1, R);
        }
    }

    /// Add `n` (no-op while telemetry is disabled).
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, R);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(R)
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.value.store(0, R);
    }
}

/// A value that can go up and down (e.g. live worker count).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// New zeroed gauge.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, value: AtomicI64::new(0) }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set to an absolute value (no-op while telemetry is disabled).
    #[inline(always)]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, R);
        }
    }

    /// Add a (possibly negative) delta (no-op while disabled).
    #[inline(always)]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, R);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(R)
    }

    /// Zero the gauge.
    pub fn reset(&self) {
        self.value.store(0, R);
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `b`
/// (1..=64) holds values in `[2^(b-1), 2^b)`.
pub const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are powers of two — `bucket(v) = 64 - v.leading_zeros()` —
/// so recording is one `fetch_add` with no floating point, and quantile
/// estimates (p50/p95/p99) are exact to within a factor of two, which
/// is plenty for latency triage. Exact `count`, `sum`, `min`, and `max`
/// are kept alongside.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// New empty histogram.
    pub const fn new(name: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket index for a sample.
    #[inline]
    pub fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (saturating at `u64::MAX`).
    pub fn bucket_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    /// Record one sample (no-op while telemetry is disabled).
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_always(v);
        }
    }

    /// Record regardless of the global flag (used by [`crate::Span`],
    /// which already checked the flag when the span started).
    #[inline]
    pub fn record_always(&self, v: u64) {
        self.count.fetch_add(1, R);
        self.sum.fetch_add(v, R);
        self.min.fetch_min(v, R);
        self.max.fetch_max(v, R);
        self.buckets[Self::bucket(v)].fetch_add(1, R);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(R)
    }

    /// True when no sample has been recorded. The empty-histogram
    /// sentinel for [`min`](Self::min), [`max`](Self::max),
    /// [`mean`](Self::mean), and [`quantile`](Self::quantile) is 0 —
    /// exporters that must distinguish "empty" from "all samples were
    /// zero" check this first (the Prometheus exposition layer does).
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(R)
    }

    /// Arithmetic mean of all samples. Empty-histogram sentinel: `0.0`
    /// (see [`is_empty`](Self::is_empty)).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest sample. Empty-histogram sentinel: 0 (see
    /// [`is_empty`](Self::is_empty)) — the raw `u64::MAX` init value is
    /// never exposed.
    pub fn min(&self) -> u64 {
        let m = self.min.load(R);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest sample. Empty-histogram sentinel: 0 (see
    /// [`is_empty`](Self::is_empty)).
    pub fn max(&self) -> u64 {
        self.max.load(R)
    }

    /// Number of samples recorded into bucket `b` (`0..`[`BUCKETS`]).
    /// Out-of-range indices read as 0. Exposed for exporters that need
    /// the raw distribution (Prometheus `_bucket` lines, the recorder's
    /// windowed deltas).
    pub fn bucket_count(&self, b: usize) -> u64 {
        self.buckets.get(b).map_or(0, |c| c.load(R))
    }

    /// Approximate quantile `q` in `[0, 1]`: walks the bucket counts and
    /// returns the bound of the bucket containing the rank, clamped to
    /// the observed `[min, max]`. Empty-histogram sentinel: 0 (see
    /// [`is_empty`](Self::is_empty)).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for b in 0..BUCKETS {
            seen += self.buckets[b].load(R);
            if seen >= rank {
                return Self::bucket_bound(b).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Clear all samples.
    pub fn reset(&self) {
        self.count.store(0, R);
        self.sum.store(0, R);
        self.min.store(u64::MAX, R);
        self.max.store(0, R);
        for b in &self.buckets {
            b.store(0, R);
        }
    }
}

macro_rules! well_known {
    (
        counters { $($cid:ident => $cname:literal : $cdoc:literal),+ $(,)? }
        gauges { $($gid:ident => $gname:literal : $gdoc:literal),+ $(,)? }
        histograms { $($hid:ident => $hname:literal : $hdoc:literal),+ $(,)? }
    ) => {
        $(#[doc = $cdoc] pub static $cid: Counter = Counter::new($cname);)+
        $(#[doc = $gdoc] pub static $gid: Gauge = Gauge::new($gname);)+
        $(#[doc = $hdoc] pub static $hid: Histogram = Histogram::new($hname);)+

        /// All well-known counters, for snapshot enumeration.
        pub static COUNTERS: &[&Counter] = &[$(&$cid),+];
        /// All well-known gauges, for snapshot enumeration.
        pub static GAUGES: &[&Gauge] = &[$(&$gid),+];
        /// All well-known histograms, for snapshot enumeration.
        pub static HISTOGRAMS: &[&Histogram] = &[$(&$hid),+];
    };
}

well_known! {
    counters {
        RDF_TERMS_INTERNED => "rdf.dict.terms_interned":
            "New terms added to the RDF dictionary.",
        QUERY_WALK_PLANS => "query.plans.built":
            "Walk/join plans constructed.",
        TRIE_SEEKS => "index.trie.seeks":
            "Binary-search seeks on trie cursors (LFTJ hot path).",
        TRIE_SEEK_LINEAR => "index.trie.seek_linear":
            "Cursor seeks resolved by the small-range linear fast path.",
        TRIE_SEEK_GALLOPS => "index.trie.seek_gallops":
            "Cursor seeks that fell through to the exponential-then-binary gallop.",
        SAMPLE_DRAWS => "index.sample.draws":
            "Uniform row draws from index ranges (walk hot path).",
        LFTJ_PROBES => "engine.lftj.probes":
            "LeapFrog intersection probes.",
        CTJ_CACHE_HITS => "engine.ctj.cache_hits":
            "CTJ memo-cache hits (count/exists/mass combined).",
        CTJ_CACHE_MISSES => "engine.ctj.cache_misses":
            "CTJ memo-cache misses (count/exists/mass combined).",
        WALKS => "core.walks.total":
            "Random walks completed (accepted + rejected), all estimators.",
        WALKS_FULL => "core.walks.full":
            "Walks that reached the final plan step.",
        WALKS_REJECTED => "core.walks.rejected":
            "Walks rejected at a dead end.",
        WALKS_TIPPED => "core.walks.tipped":
            "Audit Join walks that switched to an exact suffix computation.",
        WALKS_DUPLICATE => "core.walks.duplicate":
            "Distinct-mode walks that landed on an already-seen (α, β) pair.",
        WALK_BATCH_STEPS => "core.walk.batch_steps":
            "Plan steps advanced by the batched SoA walk runner (one per step per batch).",
        TRIE_SEEK_BATCH => "index.trie.seek_batch":
            "Prefix probes resolved through the sorted batch-seek entry points.",
        INDEX_BLOCK_SKIPS => "index.block.skips":
            "Compressed-layout blocks skipped via the per-block directory during seeks.",
        INDEX_BLOCK_UNPACKS => "index.block.unpacks":
            "Compressed-layout blocks unpacked to finish a directory-skipped seek.",
        SUPERVISOR_EXACT => "supervisor.rung.exact":
            "Supervised queries served by the exact CTJ rung.",
        SUPERVISOR_DEGRADED_AJ => "supervisor.rung.audit_join":
            "Supervised queries degraded to Audit Join estimates.",
        SUPERVISOR_DEGRADED_WJ => "supervisor.rung.wander_join":
            "Supervised queries degraded to Wander Join estimates.",
        SUPERVISOR_EXHAUSTED => "supervisor.rung.exhausted":
            "Supervised queries for which every rung failed.",
        PARALLEL_WORKERS => "core.parallel.workers_spawned":
            "Worker threads spawned by `run_parallel`.",
        PARALLEL_WORKER_PANICS => "core.parallel.workers_panicked":
            "Worker threads that panicked and were discarded.",
        POOL_TASKS_DISPATCHED => "core.pool.tasks_dispatched":
            "Jobs queued on the persistent worker pool.",
        POOL_BATCHES_MERGED => "core.pool.batches_merged":
            "Walk batches folded into live merged estimates.",
        EXPLORE_EXPANSIONS => "explore.expansions":
            "Session chart expansions evaluated.",
        DATAGEN_GRAPHS => "datagen.graphs_generated":
            "Synthetic graphs generated.",
        EPOCH_PUBLISHED => "index.epoch.published":
            "Epoch snapshots published (delta appends and merge swaps).",
        MERGE_STARTED => "index.merge.started":
            "Background delta-to-main merges started.",
        MERGE_RETRIED => "index.merge.retried":
            "Background merges retried after a failure or crash point.",
        MERGE_COMPLETED => "index.merge.completed":
            "Background merges that published a new delta-free main.",
        SUPERVISOR_SHED_PRESSURE => "supervisor.shed.ingest_pressure":
            "Supervised queries whose exact rung was shed under ingest pressure.",
        RECORDER_TICKS => "obs.recorder.ticks":
            "Time-series recorder sampling windows captured.",
        RECORDER_TICKS_SKIPPED => "obs.recorder.ticks_skipped":
            "Recorder ticks skipped because the previous sample job was still queued.",
        SLO_RECORDED => "obs.slo.recorded":
            "Query outcomes recorded by the SLO tracker.",
        SLO_BREACHES => "obs.slo.breaches":
            "Recorded queries that breached their latency objective.",
        SLO_PROFILES_CAPTURED => "obs.slo.profiles_captured":
            "Query profiles retained by the SLO slow-query log.",
        WATCHDOG_ALERTS => "obs.watchdog.alerts":
            "Watchdog rule evaluations that fired an alert.",
        HTTP_REQUESTS => "obs.http.requests":
            "Requests served by the obs-http scrape listener.",
        QUALITY_RUNS => "obs.quality.runs":
            "Estimator runs whose convergence trajectory was recorded.",
        QUALITY_CONVERGED => "obs.quality.converged":
            "Recorded runs that reached the relative-CI convergence target.",
        QUALITY_AUDITS => "obs.quality.audits":
            "Coverage audits completed (exact truth recomputed for a sampled chart).",
        QUALITY_AUDIT_MISSES => "obs.quality.audit_misses":
            "Audited confidence intervals that did not contain the exact truth.",
        QUALITY_AUDIT_FAILURES => "obs.quality.audit_failures":
            "Coverage audits abandoned by a panic or an exhausted audit budget.",
        QUALITY_AUDIT_SKIPPED => "obs.quality.audit_skipped":
            "Audit candidates skipped (sampling, in-flight guard, or stale epoch).",
    }
    gauges {
        PARALLEL_ACTIVE_WORKERS => "core.parallel.active_workers":
            "Worker threads currently running.",
        POOL_QUEUE_DEPTH => "core.pool.queue_depth":
            "Jobs currently queued on the persistent worker pool.",
        DATAGEN_LAST_TRIPLES => "datagen.last_graph_triples":
            "Triple count of the most recently generated graph.",
        DELTA_ROWS => "index.delta.rows":
            "Live rows in the current epoch's delta overlay (adds + tombstones).",
        EPOCH_CURRENT => "index.epoch.current":
            "Identifier of the currently published epoch.",
        WATCHDOG_VERDICT => "obs.watchdog.verdict":
            "Last watchdog verdict: 0 healthy, 1 degraded, 2 unhealthy.",
        QUALITY_COVERAGE_BP => "obs.quality.coverage_bp":
            "Empirical CI coverage over audited groups, in basis points (10000 = 100%).",
        QUALITY_AUDITED_GROUPS => "obs.quality.audited_groups":
            "Total per-group confidence intervals audited so far.",
        QUALITY_STATS_DRIFT_BP => "obs.quality.stats_drift_bp":
            "Largest per-predicate rejection/tip-rate delta vs the previous epoch (basis points).",
        QUALITY_DRIFTED_PREDICATES => "obs.quality.drifted_predicates":
            "Predicates whose walk-rate delta vs the previous epoch exceeds the drift limit.",
        AJ_TIP_THRESHOLD => "core.aj.tip_threshold":
            "Current Audit Join tipping threshold (adaptive controller trajectory; static value otherwise).",
        INDEX_BITS_PER_KEY => "index.compressed.bits_per_key":
            "Mean payload bits per key of the most recently built compressed index (ceil).",
    }
    histograms {
        SUPERVISE_NS => "supervisor.supervise_ns":
            "End-to-end latency of `supervise` calls (ns).",
        EXACT_RUNG_NS => "supervisor.exact_rung_ns":
            "Latency of the exact-CTJ rung attempt inside `supervise` (ns).",
        CTJ_EVAL_NS => "engine.ctj.evaluate_ns":
            "Latency of standalone governed CTJ evaluations (ns).",
        EXPAND_NS => "explore.expand_ns":
            "Latency of session chart expansions (ns).",
        AJ_TIP_STEP => "core.aj.tip_step":
            "Plan step (1-based) at which Audit Join walks tipped.",
        WALK_BATCH_OCCUPANCY => "core.walk.batch_occupancy":
            "Walks still live when a batched SoA step ran (per step, per batch).",
        PARALLEL_WORKER_WALKS => "core.parallel.worker_walks":
            "Walks completed per parallel worker.",
        QUALITY_TIME_TO_CI_US => "obs.quality.time_to_ci_us":
            "Time for an estimator run to first reach the relative-CI target (µs).",
        QUALITY_AUDIT_NS => "obs.quality.audit_ns":
            "Latency of budgeted exact-truth recomputations in the coverage auditor (ns).",
    }
}

/// Serialises tests that toggle process-global telemetry state (the
/// enabled flag, resets). Not part of the public API surface.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gated_by_enabled_flag() {
        let _guard = test_lock();
        let c = Counter::new("test.gated");
        crate::set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0, "disabled counter must not move");
        crate::set_enabled(true);
        c.inc();
        c.add(4);
        crate::set_enabled(false);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _guard = test_lock();
        let g = Gauge::new("test.gauge");
        crate::set_enabled(true);
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        crate::set_enabled(false);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound is >= the value.
        for v in [0u64, 1, 7, 100, 1 << 40, u64::MAX] {
            assert!(Histogram::bucket_bound(Histogram::bucket(v)) >= v);
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let _guard = test_lock();
        let h = Histogram::new("test.hist");
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        assert_eq!(h.min(), 0);
        crate::set_enabled(true);
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        crate::set_enabled(false);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // Log-bucketed: exact to within 2x, clamped to observed range.
        assert!((10..=63).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn empty_histogram_sentinels_are_explicit() {
        let h = Histogram::new("test.empty");
        assert!(h.is_empty());
        // The documented empty sentinel is 0 across the board — never
        // the raw u64::MAX the min slot is initialised with.
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        for b in 0..BUCKETS {
            assert_eq!(h.bucket_count(b), 0);
        }
    }

    #[test]
    fn histogram_mean_and_bucket_counts() {
        let _guard = test_lock();
        let h = Histogram::new("test.mean");
        crate::set_enabled(true);
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        crate::set_enabled(false);
        assert!(!h.is_empty());
        assert!((h.mean() - 201.2).abs() < 1e-9);
        assert_eq!(h.bucket_count(Histogram::bucket(0)), 1);
        assert_eq!(h.bucket_count(Histogram::bucket(1)), 1);
        // 2 and 3 share bucket 2.
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(Histogram::bucket(1000)), 1);
        assert_eq!(h.bucket_count(BUCKETS + 7), 0, "out of range reads as 0");
        let total: u64 = (0..BUCKETS).map(|b| h.bucket_count(b)).sum();
        assert_eq!(total, h.count(), "bucket counts partition the samples");
    }

    #[test]
    fn well_known_names_are_unique_and_conventional() {
        let mut names: Vec<&str> = COUNTERS
            .iter()
            .map(|c| c.name())
            .chain(GAUGES.iter().map(|g| g.name()))
            .chain(HISTOGRAMS.iter().map(|h| h.name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "non-conventional metric name {n:?}"
            );
            assert!(n.contains('.'), "metric name {n:?} lacks a crate prefix");
        }
    }
}
