//! Prometheus text exposition and the `obs-http` scrape listener.
//!
//! [`render_prometheus`] maps the whole telemetry state to the
//! Prometheus text exposition format (version 0.0.4):
//!
//! - dotted metric names become underscore names under a `kgoa_`
//!   prefix (`index.trie.seeks` → `kgoa_index_trie_seeks`), with the
//!   original name kept in the `# HELP` line;
//! - counters get the `_total` suffix;
//! - histograms export their log buckets as the cumulative
//!   `_bucket{le="..."}` series using [`Histogram::bucket_bound`] —
//!   bucket `b`'s inclusive upper bound is exact, so no precision is
//!   lost in the mapping — plus `_sum` and `_count`; the `+Inf` bucket
//!   always equals `_count`. Empty histograms export a zero `_count`,
//!   zero `_sum`, and a single zero `+Inf` bucket (the well-defined
//!   empty-series output the [`crate::metrics::Histogram::is_empty`]
//!   sentinel exists for);
//! - armed [SLO](crate::slo) keys export as labeled series
//!   (`kgoa_slo_queries_total{engine="...",rung="..."}`, quantile
//!   gauges), the one place label escaping matters.
//!
//! [`check_exposition`] is a tiny in-tree parser for the same format:
//! CI and the `repro monitor` experiment run every `/metrics` scrape
//! through it, so the exposition stays valid by construction.
//!
//! The listener ([`ObsServer`], feature `obs-http`) is a minimal
//! HTTP/1.1 server over `std::net` — zero dependencies, one connection
//! at a time, `Connection: close` — deliberately shaped like the
//! transport the ROADMAP's `kgoa-serve` item needs. Routes: `/metrics`,
//! `/snapshot` (v1 JSON), `/series` (recorder ring, v3), `/healthz`
//! (watchdog verdict + fired rule names; HTTP 503 when unhealthy),
//! `/quality` (the estimator-quality plane's
//! [`quality::summary_json`] document), `/profilez/<trace-id>`
//! (captured slow-query profiles, v2). It runs on its own OS thread,
//! **not** the shared worker pool: an accept loop blocks indefinitely,
//! and parking it on a pool worker would starve epoch merges on small
//! machines.

use crate::metrics::{self, Histogram, BUCKETS};
use crate::quality;
use crate::registry::Registry;
use crate::slo;

/// Map a dotted metric name to a Prometheus name: `kgoa_` prefix, with
/// every character outside `[a-zA-Z0-9_]` replaced by `_`.
pub fn prometheus_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 5);
    out.push_str("kgoa_");
    for ch in dotted.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn help_line(out: &mut String, name: &str, dotted: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} kgoa {kind} {dotted}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

fn render_histogram(out: &mut String, h: &Histogram) {
    let name = prometheus_name(h.name());
    help_line(out, &name, h.name(), "histogram");
    let count = h.count();
    let mut cumulative = 0u64;
    if count > 0 {
        // Emit up to the highest occupied bucket; bucket 64's bound is
        // u64::MAX, which Prometheus spells +Inf, so cap at 63 and let
        // the +Inf line absorb the rest.
        let top = (0..BUCKETS).rev().find(|b| h.bucket_count(*b) > 0).unwrap_or(0);
        for b in 0..=top.min(63) {
            cumulative += h.bucket_count(b);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                Histogram::bucket_bound(b)
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {count}\n"));
}

/// Render all counters, gauges, histograms, and armed SLO keys to the
/// Prometheus text exposition format.
pub fn render_prometheus() -> String {
    let reg = Registry::global();
    let mut out = String::new();

    let mut counters: Vec<_> = metrics::COUNTERS.iter().copied().chain(reg.counters()).collect();
    counters.sort_by_key(|c| c.name());
    for c in counters {
        let name = format!("{}_total", prometheus_name(c.name()));
        help_line(&mut out, &name, c.name(), "counter");
        out.push_str(&format!("{name} {}\n", c.get()));
    }

    let mut gauges: Vec<_> = metrics::GAUGES.iter().copied().chain(reg.gauges()).collect();
    gauges.sort_by_key(|g| g.name());
    for g in gauges {
        let name = prometheus_name(g.name());
        help_line(&mut out, &name, g.name(), "gauge");
        out.push_str(&format!("{name} {}\n", g.get()));
    }

    let mut hists: Vec<_> = metrics::HISTOGRAMS.iter().copied().chain(reg.histograms()).collect();
    hists.sort_by_key(|h| h.name());
    for h in hists {
        render_histogram(&mut out, h);
    }

    let keys = slo::summary();
    if !keys.is_empty() {
        let label = |k: &slo::KeySummary| {
            format!(
                "engine=\"{}\",rung=\"{}\"",
                escape_label_value(k.engine),
                escape_label_value(k.rung)
            )
        };
        help_line(&mut out, "kgoa_slo_queries_total", "obs.slo (per key)", "counter");
        for k in &keys {
            out.push_str(&format!("kgoa_slo_queries_total{{{}}} {}\n", label(k), k.count));
        }
        help_line(&mut out, "kgoa_slo_breaches_total", "obs.slo (per key)", "counter");
        for k in &keys {
            out.push_str(&format!("kgoa_slo_breaches_total{{{}}} {}\n", label(k), k.breaches));
        }
        help_line(&mut out, "kgoa_slo_objective_us", "obs.slo (per key)", "gauge");
        for k in &keys {
            out.push_str(&format!("kgoa_slo_objective_us{{{}}} {}\n", label(k), k.objective_us));
        }
        help_line(&mut out, "kgoa_slo_latency_us", "obs.slo (per key)", "gauge");
        for k in &keys {
            for (q, v) in
                [("0.5", k.p50_us), ("0.95", k.p95_us), ("0.99", k.p99_us)]
            {
                out.push_str(&format!(
                    "kgoa_slo_latency_us{{{},quantile=\"{q}\"}} {v}\n",
                    label(k)
                ));
            }
        }
    }

    let quality_keys = quality::convergence_summary();
    if !quality_keys.is_empty() {
        let label = |k: &quality::ConvergenceSummary| {
            format!(
                "engine=\"{}\",rung=\"{}\"",
                escape_label_value(k.engine),
                escape_label_value(k.rung)
            )
        };
        help_line(&mut out, "kgoa_quality_runs_total", "obs.quality (per key)", "counter");
        for k in &quality_keys {
            out.push_str(&format!("kgoa_quality_runs_total{{{}}} {}\n", label(k), k.runs));
        }
        help_line(&mut out, "kgoa_quality_converged_total", "obs.quality (per key)", "counter");
        for k in &quality_keys {
            out.push_str(&format!(
                "kgoa_quality_converged_total{{{}}} {}\n",
                label(k),
                k.converged
            ));
        }
        help_line(&mut out, "kgoa_quality_time_to_ci_us", "obs.quality (per key)", "gauge");
        for k in &quality_keys {
            for (q, v) in [("0.5", k.p50_time_to_ci_us), ("0.95", k.p95_time_to_ci_us)] {
                out.push_str(&format!(
                    "kgoa_quality_time_to_ci_us{{{},quantile=\"{q}\"}} {v}\n",
                    label(k)
                ));
            }
        }
        help_line(&mut out, "kgoa_quality_ci_slope_per_sec", "obs.quality (per key)", "gauge");
        for k in &quality_keys {
            out.push_str(&format!(
                "kgoa_quality_ci_slope_per_sec{{{}}} {}\n",
                label(k),
                k.p50_slope_per_sec
            ));
        }
    }
    out
}

/// What [`check_exposition`] learned about a scrape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Metric families seen (`# TYPE` lines).
    pub families: usize,
    /// Sample lines seen.
    pub samples: usize,
    /// Histogram families whose invariants were checked.
    pub histograms: usize,
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed sample line: metric name, resolved labels, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Split a sample line into `(name, labels, value)`. Labels come back
/// with escapes resolved.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |m: &str| format!("{m}: {line:?}");
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close =
                line.rfind('}').ok_or_else(|| err("unterminated label set"))?;
            if close < open {
                return Err(err("mismatched braces"));
            }
            (&line[..open], Some((&line[open + 1..close], &line[close + 1..])))
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| err("missing value"))?;
            (&line[..sp], None)
        }
    };
    if !valid_metric_name(name_part) {
        return Err(err("invalid metric name"));
    }
    let (labels, value_part) = match rest {
        None => (Vec::new(), line[name_part.len()..].trim()),
        Some((labels_raw, tail)) => {
            let mut labels = Vec::new();
            let mut chars = labels_raw.chars().peekable();
            while chars.peek().is_some() {
                let mut key = String::new();
                for ch in chars.by_ref() {
                    if ch == '=' {
                        break;
                    }
                    key.push(ch);
                }
                if !valid_metric_name(key.trim()) {
                    return Err(err("invalid label name"));
                }
                if chars.next() != Some('"') {
                    return Err(err("label value must be quoted"));
                }
                let mut val = String::new();
                let mut closed = false;
                while let Some(ch) = chars.next() {
                    match ch {
                        '\\' => match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            _ => return Err(err("bad escape in label value")),
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        other => val.push(other),
                    }
                }
                if !closed {
                    return Err(err("unterminated label value"));
                }
                labels.push((key.trim().to_string(), val));
                if chars.peek() == Some(&',') {
                    chars.next();
                }
            }
            (labels, tail.trim())
        }
    };
    let value: f64 = if value_part == "+Inf" {
        f64::INFINITY
    } else {
        value_part.parse().map_err(|_| err("unparseable value"))?
    };
    Ok((name_part.to_string(), labels, value))
}

/// Validate a Prometheus text exposition document: line syntax, `TYPE`
/// declared before its samples, and for every histogram family the
/// cumulative-bucket invariants (`le` buckets non-decreasing, the
/// `+Inf` bucket present and equal to `_count`).
pub fn check_exposition(text: &str) -> Result<ExpositionSummary, String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    // family -> (buckets in order, +inf, count, sum seen) keyed by
    // non-le label signature so labeled histograms check independently.
    #[derive(Default)]
    struct HistCheck {
        bounds: Vec<f64>,
        buckets: Vec<f64>,
        inf: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: HashMap<(String, String), HistCheck> = HashMap::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_metric_name(name) {
                        return Err(format!("invalid name in TYPE line: {line:?}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped")
                    {
                        return Err(format!("unknown type {kind:?}: {line:?}"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                (Some("HELP"), Some(name), _) if valid_metric_name(name) => {}
                (Some("HELP"), _, _) => {
                    return Err(format!("invalid name in HELP line: {line:?}"));
                }
                _ => return Err(format!("malformed comment line: {line:?}")),
            }
            continue;
        }
        let (name, labels, value) = parse_sample(line)?;
        samples += 1;
        // Resolve the family: histogram samples use suffixed names.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|s| name.strip_suffix(s))
            .find(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            .map(str::to_string);
        let declared = family.clone().unwrap_or_else(|| name.clone());
        if !types.contains_key(&declared) {
            return Err(format!("sample before TYPE declaration: {line:?}"));
        }
        if let Some(fam) = family {
            let sig: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let entry = hists.entry((fam, sig.join(","))).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("bucket without le label: {line:?}"))?;
                if le.1 == "+Inf" {
                    entry.inf = Some(value);
                } else {
                    let bound: f64 = le
                        .1
                        .parse()
                        .map_err(|_| format!("unparseable le bound: {line:?}"))?;
                    if entry.bounds.last().is_some_and(|prev| bound <= *prev) {
                        return Err(format!("le bounds out of order: {line:?}"));
                    }
                    entry.bounds.push(bound);
                    entry.buckets.push(value);
                }
            } else if name.ends_with("_count") {
                entry.count = Some(value);
            }
        }
    }

    for ((fam, sig), check) in &hists {
        for w in check.buckets.windows(2) {
            if w[1] < w[0] {
                return Err(format!("histogram {fam}{{{sig}}} buckets not cumulative"));
            }
        }
        let inf = check
            .inf
            .ok_or_else(|| format!("histogram {fam}{{{sig}}} missing +Inf bucket"))?;
        let count = check
            .count
            .ok_or_else(|| format!("histogram {fam}{{{sig}}} missing _count"))?;
        if inf != count {
            return Err(format!(
                "histogram {fam}{{{sig}}}: +Inf bucket {inf} != _count {count}"
            ));
        }
        if let Some(last) = check.buckets.last() {
            if *last > inf {
                return Err(format!("histogram {fam}{{{sig}}}: finite bucket above +Inf"));
            }
        }
    }

    Ok(ExpositionSummary { families: types.len(), samples, histograms: hists.len() })
}

#[cfg(feature = "obs-http")]
pub use server::ObsServer;

#[cfg(feature = "obs-http")]
mod server {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::Duration;

    use super::render_prometheus;
    use crate::json::Json;
    use crate::metrics;
    use crate::recorder::{Recorder, SERIES_SCHEMA};
    use crate::slo;
    use crate::snapshot::snapshot;
    use crate::watchdog::{self, Verdict, WatchdogConfig};

    /// Maximum request head we will buffer before answering 400.
    const MAX_REQUEST: usize = 8 * 1024;

    /// The scrape listener: a minimal single-threaded HTTP/1.1 server
    /// over `std::net`. See the [module docs](super) for the routes.
    pub struct ObsServer {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl ObsServer {
        /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
        /// and start serving on a dedicated OS thread with the default
        /// watchdog thresholds.
        pub fn start(addr: impl ToSocketAddrs) -> std::io::Result<ObsServer> {
            Self::start_with(addr, WatchdogConfig::default())
        }

        /// [`start`](Self::start) with explicit watchdog thresholds
        /// for the `/healthz` evaluation.
        pub fn start_with(
            addr: impl ToSocketAddrs,
            watchdog: WatchdogConfig,
        ) -> std::io::Result<ObsServer> {
            let listener = TcpListener::bind(addr)?;
            let local = listener.local_addr()?;
            let stop = Arc::new(AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("kgoa-obs-http".into())
                .spawn(move || accept_loop(listener, &stop_flag, &watchdog))?;
            crate::events::info("export", format!("obs-http listening on {local}"));
            Ok(ObsServer { addr: local, stop, handle: Some(handle) })
        }

        /// The bound address (resolves the actual ephemeral port).
        pub fn local_addr(&self) -> SocketAddr {
            self.addr
        }

        /// Stop accepting and join the listener thread. Idempotent;
        /// also runs on drop.
        pub fn stop(&mut self) {
            if self.stop.swap(true, Ordering::Relaxed) {
                return;
            }
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for ObsServer {
        fn drop(&mut self) {
            self.stop();
        }
    }

    fn accept_loop(listener: TcpListener, stop: &AtomicBool, watchdog: &WatchdogConfig) {
        for conn in listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // One connection at a time: scrapes are rare and short;
            // serial handling keeps the server free of shared state.
            handle_connection(stream, watchdog);
        }
    }

    fn handle_connection(mut stream: TcpStream, watchdog: &WatchdogConfig) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if let Some(pos) =
                        buf.windows(4).position(|w| w == b"\r\n\r\n")
                    {
                        break pos;
                    }
                    if buf.len() > MAX_REQUEST {
                        respond(
                            &mut stream,
                            400,
                            "application/json",
                            &Json::Obj(vec![(
                                "error".into(),
                                Json::str("request too large"),
                            )])
                            .render(),
                        );
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut parts = head.lines().next().unwrap_or("").split_whitespace();
        let (method, path) =
            (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        metrics::HTTP_REQUESTS.inc();
        if method != "GET" {
            respond(
                &mut stream,
                405,
                "application/json",
                &Json::Obj(vec![("error".into(), Json::str("method not allowed"))]).render(),
            );
            return;
        }
        route(&mut stream, path, watchdog);
    }

    fn route(stream: &mut TcpStream, path: &str, watchdog: &WatchdogConfig) {
        match path {
            "/metrics" => respond(
                stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &render_prometheus(),
            ),
            "/snapshot" => {
                respond(stream, 200, "application/json", &snapshot().to_json().pretty(2));
            }
            "/series" => {
                let body = match Recorder::global() {
                    Some(rec) => rec.to_json().pretty(2),
                    None => Json::Obj(vec![
                        ("schema".into(), Json::str(SERIES_SCHEMA)),
                        ("tick_us".into(), Json::Num(0.0)),
                        ("capacity".into(), Json::Num(0.0)),
                        ("dropped".into(), Json::Num(0.0)),
                        ("windows".into(), Json::Arr(Vec::new())),
                    ])
                    .pretty(2),
                };
                respond(stream, 200, "application/json", &body);
            }
            "/healthz" => {
                let report = watchdog::tick_global(watchdog);
                let code = if report.verdict == Verdict::Unhealthy { 503 } else { 200 };
                respond(stream, code, "application/json", &report.to_json().pretty(2));
            }
            "/quality" => {
                respond(stream, 200, "application/json", &crate::quality::summary_json().pretty(2));
            }
            _ => {
                if let Some(id) = path.strip_prefix("/profilez/") {
                    match id.parse::<u64>().ok().and_then(slo::profile_json) {
                        Some(profile) => {
                            respond(stream, 200, "application/json", &profile.pretty(2));
                            return;
                        }
                        None => {
                            respond(
                                stream,
                                404,
                                "application/json",
                                &Json::Obj(vec![(
                                    "error".into(),
                                    Json::str("no captured profile for that trace id"),
                                )])
                                .render(),
                            );
                            return;
                        }
                    }
                }
                respond(
                    stream,
                    404,
                    "application/json",
                    &Json::Obj(vec![("error".into(), Json::str("unknown path"))]).render(),
                );
            }
        }
    }

    fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
        let reason = match code {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let head = format!(
            "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(body.as_bytes());
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn names_and_labels_escape() {
        assert_eq!(prometheus_name("index.trie.seeks"), "kgoa_index_trie_seeks");
        assert_eq!(prometheus_name("a-b c"), "kgoa_a_b_c");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        // Escaped values survive the round trip through the parser.
        let line = format!(
            "m_total{{k=\"{}\"}} 1",
            escape_label_value("a\"b\\c\nd")
        );
        let (_, labels, _) = parse_sample(&line).unwrap();
        assert_eq!(labels, vec![("k".to_string(), "a\"b\\c\nd".to_string())]);
    }

    #[test]
    fn empty_histogram_has_well_defined_exposition() {
        let h = Histogram::new("test.exposition.empty");
        let mut out = String::new();
        render_histogram(&mut out, &h);
        let name = "kgoa_test_exposition_empty";
        assert!(out.contains(&format!("{name}_bucket{{le=\"+Inf\"}} 0\n")));
        assert!(out.contains(&format!("{name}_sum 0\n")));
        assert!(out.contains(&format!("{name}_count 0\n")));
        check_exposition(&out).expect("empty histogram exposition is valid");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let _guard = crate::metrics::test_lock();
        let h = Histogram::new("test.exposition.filled");
        crate::set_enabled(true);
        for v in [0u64, 1, 1, 3, 700] {
            h.record(v);
        }
        crate::set_enabled(false);
        let mut out = String::new();
        render_histogram(&mut out, &h);
        let summary = check_exposition(&out).expect("valid exposition");
        assert_eq!(summary.histograms, 1);
        // Monotonicity + terminal bucket by hand, independent of the
        // parser: cumulative counts along the bucket lines.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[1] >= w[0]), "buckets must be cumulative");
        let inf: u64 = out
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .and_then(|l| l.rsplit(' ').next())
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(inf, h.count(), "+Inf bucket equals _count");
        assert_eq!(*counts.last().unwrap(), h.count(), "all samples are below bucket 63");
    }

    #[test]
    fn full_render_round_trips_through_parser() {
        let _guard = crate::metrics::test_lock();
        crate::reset();
        crate::set_enabled(true);
        metrics::TRIE_SEEKS.add(12);
        metrics::POOL_QUEUE_DEPTH.set(2);
        metrics::SUPERVISE_NS.record(4096);
        crate::set_enabled(false);
        crate::slo::arm(crate::slo::SloPolicy {
            objective: std::time::Duration::from_micros(1),
            overrides: Vec::new(),
            capture: false,
        });
        crate::events::set_stderr_level(None);
        crate::slo::record(
            "supervisor",
            "exact",
            std::time::Duration::from_millis(2),
            Some(1),
        );
        crate::events::set_stderr_level(Some(crate::events::Level::Warn));
        let text = render_prometheus();
        let summary = check_exposition(&text).expect("full render must parse");
        assert!(summary.families > 10);
        assert!(summary.samples > summary.families);
        assert!(text.contains("kgoa_index_trie_seeks_total 12\n"));
        assert!(text.contains("kgoa_core_pool_queue_depth 2\n"));
        assert!(
            text.contains("kgoa_slo_breaches_total{engine=\"supervisor\",rung=\"exact\"} 1\n")
        );
        crate::slo::disarm();
        crate::reset();
    }

    #[test]
    fn armed_quality_plane_exports_labeled_series() {
        let _guard = crate::metrics::test_lock();
        crate::reset();
        crate::quality::disarm();
        crate::quality::arm(crate::quality::QualityPolicy::default());
        crate::quality::record_convergence(
            "parallel",
            "audit_join",
            &[crate::trace::TracePoint {
                walks: 256,
                estimate: 100.0,
                ci_half_width: 2.0,
                elapsed: std::time::Duration::from_micros(750),
            }],
        );
        let text = render_prometheus();
        check_exposition(&text).expect("quality series must parse");
        assert!(text.contains(
            "kgoa_quality_runs_total{engine=\"parallel\",rung=\"audit_join\"} 1\n"
        ));
        assert!(text.contains(
            "kgoa_quality_time_to_ci_us{engine=\"parallel\",rung=\"audit_join\",quantile=\"0.5\"}"
        ));
        crate::quality::disarm();
        crate::reset();
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(check_exposition("no_type_line 1\n").is_err(), "sample before TYPE");
        assert!(check_exposition("# TYPE m wrongkind\nm 1\n").is_err());
        assert!(check_exposition("# TYPE 9bad counter\n").is_err());
        let unterminated = "# TYPE m counter\nm_total{k=\"v} 1\n";
        assert!(check_exposition(unterminated).is_err());
        let non_cumulative = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
             h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(check_exposition(non_cumulative).unwrap_err().contains("not cumulative"));
        let inf_mismatch = "# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(check_exposition(inf_mismatch).unwrap_err().contains("+Inf"));
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(check_exposition(no_inf).unwrap_err().contains("missing +Inf"));
    }
}
