//! A minimal JSON document model with a writer and a strict
//! recursive-descent parser — just enough to emit snapshots and to
//! validate them in tests and CI without any external dependency.
//!
//! Objects preserve insertion order (they are `Vec<(String, Json)>`,
//! not maps), so a parse → serialise round trip is byte-identical for
//! documents this crate produced. Non-finite numbers serialise as
//! `null` (JSON has no NaN/Infinity).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialise compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise with newlines and `indent`-space nesting.
    pub fn pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { nl } else { "," });
                    if i > 0 {
                        out.push_str(nl);
                    }
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { nl } else { "," });
                    if i > 0 {
                        out.push_str(nl);
                    }
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 1; // land on 'u' for hex4
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // self.pos is at 'u'; consume it plus 4 hex digits.
        self.pos += 1;
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { at: start, msg: format!("invalid number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("kgoa-obs/v1")),
            ("n".into(), Json::Num(42.0)),
            ("pi".into(), Json::Num(3.5)),
            ("neg".into(), Json::Num(-7.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::str("a\n\"b\"")])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let compact = doc.render();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        // Pretty output parses back to the same value too, and a second
        // render of the parse is byte-identical (order preserved).
        let pretty = doc.pretty(2);
        let reparsed = Json::parse(&pretty).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.render(), compact);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\u0041\t\\\" \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\t\\\" \u{e9} \u{1F600}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"unterminated",
            "nul", "[1,]x", "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::Num(1e9).render(), "1000000000");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn get_and_accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("a").is_none());
    }
}
