//! Dynamic metric registration.
//!
//! Most instrumentation uses the well-known `static`s in
//! [`crate::metrics`]; the registry covers metrics whose names are only
//! known at runtime (per-experiment counters in the bench harness,
//! tests). Handles are `&'static` — a registered metric is leaked once
//! and lives for the process, so the hot path stays a plain atomic op
//! with no locking. Lookup by name is linear under a mutex: registration
//! is expected a handful of times per process, not per sample.

use std::sync::Mutex;

use crate::metrics::{Counter, Gauge, Histogram};

/// A process-wide registry of dynamically-created metrics.
pub struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static Histogram>>,
}

static GLOBAL: Registry = Registry {
    counters: Mutex::new(Vec::new()),
    gauges: Mutex::new(Vec::new()),
    histograms: Mutex::new(Vec::new()),
};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// The process-wide registry used by [`crate::snapshot`].
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    /// Get or create the counter named `name`. The first call for a
    /// name leaks one `Counter` (by design — see module docs).
    pub fn counter(&'static self, name: &str) -> &'static Counter {
        let mut v = lock(&self.counters);
        if let Some(c) = v.iter().find(|c| c.name() == name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new(leak_name(name))));
        v.push(c);
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&'static self, name: &str) -> &'static Gauge {
        let mut v = lock(&self.gauges);
        if let Some(g) = v.iter().find(|g| g.name() == name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new(leak_name(name))));
        v.push(g);
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&'static self, name: &str) -> &'static Histogram {
        let mut v = lock(&self.histograms);
        if let Some(h) = v.iter().find(|h| h.name() == name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(leak_name(name))));
        v.push(h);
        h
    }

    /// Zero every registered metric (handles stay valid).
    pub fn reset(&self) {
        lock(&self.counters).iter().for_each(|c| c.reset());
        lock(&self.gauges).iter().for_each(|g| g.reset());
        lock(&self.histograms).iter().for_each(|h| h.reset());
    }

    /// Registered counters, in registration order.
    pub fn counters(&self) -> Vec<&'static Counter> {
        lock(&self.counters).clone()
    }

    /// Registered gauges, in registration order.
    pub fn gauges(&self) -> Vec<&'static Gauge> {
        lock(&self.gauges).clone()
    }

    /// Registered histograms, in registration order.
    pub fn histograms(&self) -> Vec<&'static Histogram> {
        lock(&self.histograms).clone()
    }
}

fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_owned().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_handle() {
        let a = Registry::global().counter("test.registry.reused");
        let b = Registry::global().counter("test.registry.reused");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn registered_metrics_record_and_reset() {
        let _guard = crate::metrics::test_lock();
        crate::set_enabled(true);
        let c = Registry::global().counter("test.registry.counter");
        let g = Registry::global().gauge("test.registry.gauge");
        let h = Registry::global().histogram("test.registry.hist");
        c.add(3);
        g.set(-4);
        h.record(9);
        crate::set_enabled(false);
        assert_eq!(c.get(), 3);
        assert_eq!(g.get(), -4);
        assert_eq!(h.count(), 1);
        assert!(Registry::global().counters().iter().any(|x| std::ptr::eq(*x, c)));
        Registry::global().reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
    }
}
