//! Resource-governed execution: shared budgets, cooperative checkpoints,
//! and deterministic fault injection.
//!
//! Interactive exploration must answer within a human latency budget
//! (the premise of the paper), and a service in front of a public graph
//! survives only by bounding every query (cf. the service-robustness
//! survey in PAPERS.md). [`ExecBudget`] is the one shared control block:
//! a deadline, a cancellation flag, and tuple/walk/byte counters, threaded
//! as *cooperative checkpoints* through every engine hot loop. Exhaustion
//! surfaces as a typed [`BudgetExceeded`] — never a hang, never a panic —
//! which the supervisor in `kgoa-core` turns into graceful degradation
//! (exact → Audit Join → Wander Join → error).
//!
//! Checkpoints are amortized: hot loops tick a thread-local
//! [`BudgetMeter`] that consults the clock and the shared atomics only
//! every [`BudgetMeter::STRIDE`] iterations, so governance costs well
//! under a nanosecond per tuple on the paths that matter.
//!
//! With the `fault-inject` feature a deterministic [`FaultPlan`] can be
//! attached: fail the Nth trie seek, panic the Kth walk, delay a worker
//! thread. The plan's counters are global across threads sharing the
//! budget, which makes multi-worker failure tests reproducible.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget was exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetReason {
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The budget was cooperatively cancelled (user navigated away,
    /// session torn down, supervisor moved on).
    Cancelled,
    /// More intermediate tuples were produced than allowed.
    TupleLimit {
        /// The configured tuple cap.
        limit: u64,
    },
    /// More random walks were taken than allowed.
    WalkLimit {
        /// The configured walk cap.
        limit: u64,
    },
    /// More bytes were (approximately) allocated than allowed.
    MemoryLimit {
        /// The configured byte cap.
        limit: u64,
    },
    /// A deterministic fault-injection plan fired (tests only).
    FaultInjected(&'static str),
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetReason::DeadlineExpired => write!(f, "deadline expired"),
            BudgetReason::Cancelled => write!(f, "cancelled"),
            BudgetReason::TupleLimit { limit } => write!(f, "tuple budget of {limit} exceeded"),
            BudgetReason::WalkLimit { limit } => write!(f, "walk budget of {limit} exceeded"),
            BudgetReason::MemoryLimit { limit } => {
                write!(f, "memory budget of {limit} bytes exceeded")
            }
            BudgetReason::FaultInjected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

/// A budget violation: the reason plus how long the execution had run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Why the execution must stop.
    pub reason: BudgetReason,
    /// Elapsed wall-clock time since the budget was created.
    pub elapsed: Duration,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {:?}", self.reason, self.elapsed)
    }
}

impl std::error::Error for BudgetExceeded {}

/// A deterministic fault-injection plan (compiled in only with the
/// `fault-inject` feature; see DESIGN.md "Robustness & degradation").
///
/// Counters live in the shared budget, so e.g. "panic the 100th walk"
/// means the 100th walk *across all workers* sharing the budget.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Fail (with [`BudgetReason::FaultInjected`]) the Nth governed trie
    /// seek / recursion checkpoint, 1-based.
    pub fail_seek_at: Option<u64>,
    /// Panic on the Kth walk, 1-based — exercises `catch_unwind`
    /// isolation in workers and the supervisor.
    pub panic_walk_at: Option<u64>,
    /// Delay the given worker index by the given duration at startup —
    /// exercises straggler behavior under deadlines.
    pub delay_worker: Option<(usize, Duration)>,
}

#[cfg(feature = "fault-inject")]
#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    seeks: AtomicU64,
    walks: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    tuples: AtomicU64,
    tuple_limit: u64,
    walks: AtomicU64,
    walk_limit: u64,
    bytes: AtomicU64,
    byte_limit: u64,
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultState>,
}

/// A shared execution budget: deadline, cancellation, resource counters.
///
/// Cloning is cheap (an `Arc`); all clones observe the same state, so one
/// budget can govern an exact engine, an online aggregator and a pool of
/// worker threads at once. The default ([`ExecBudget::unlimited`]) is a
/// no-allocation sentinel whose checks compile to almost nothing.
#[derive(Debug, Clone, Default)]
pub struct ExecBudget {
    inner: Option<Arc<Inner>>,
}

impl ExecBudget {
    /// A budget that never trips (and allocates nothing).
    pub fn unlimited() -> Self {
        ExecBudget { inner: None }
    }

    /// Start building a governed budget.
    pub fn builder() -> ExecBudgetBuilder {
        ExecBudgetBuilder::default()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(limit: Duration) -> Self {
        Self::builder().deadline(limit).build()
    }

    /// True if this is the unlimited sentinel.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Elapsed time since the budget was created (zero for unlimited).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |i| i.start.elapsed())
    }

    /// Wall-clock remaining until the deadline (`None` when undeadlined).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let deadline = inner.deadline?;
        Some(deadline.saturating_duration_since(Instant::now()))
    }

    /// Cooperatively cancel every execution sharing this budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True once [`ExecBudget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// Total tuples charged so far.
    pub fn tuples(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.tuples.load(Ordering::Relaxed))
    }

    /// Total walks charged so far.
    pub fn walks(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.walks.load(Ordering::Relaxed))
    }

    fn exceeded(&self, reason: BudgetReason) -> BudgetExceeded {
        BudgetExceeded { reason, elapsed: self.elapsed() }
    }

    /// Full checkpoint: cancellation, deadline, and counter limits.
    ///
    /// This consults the clock; hot loops should amortize it through a
    /// [`BudgetMeter`] rather than calling it per iteration.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else { return Ok(()) };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(self.exceeded(BudgetReason::Cancelled));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(self.exceeded(BudgetReason::DeadlineExpired));
            }
        }
        if inner.tuples.load(Ordering::Relaxed) > inner.tuple_limit {
            return Err(self.exceeded(BudgetReason::TupleLimit { limit: inner.tuple_limit }));
        }
        if inner.walks.load(Ordering::Relaxed) > inner.walk_limit {
            return Err(self.exceeded(BudgetReason::WalkLimit { limit: inner.walk_limit }));
        }
        if inner.bytes.load(Ordering::Relaxed) > inner.byte_limit {
            return Err(self.exceeded(BudgetReason::MemoryLimit { limit: inner.byte_limit }));
        }
        Ok(())
    }

    /// Charge `n` intermediate tuples and fail if over the cap.
    pub fn charge_tuples(&self, n: u64) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else { return Ok(()) };
        let total = inner.tuples.fetch_add(n, Ordering::Relaxed) + n;
        if total > inner.tuple_limit {
            return Err(self.exceeded(BudgetReason::TupleLimit { limit: inner.tuple_limit }));
        }
        Ok(())
    }

    /// Charge one random walk and fail if over the cap.
    pub fn charge_walk(&self) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else { return Ok(()) };
        let total = inner.walks.fetch_add(1, Ordering::Relaxed) + 1;
        if total > inner.walk_limit {
            return Err(self.exceeded(BudgetReason::WalkLimit { limit: inner.walk_limit }));
        }
        Ok(())
    }

    /// Charge `n` random walks at once (one atomic add for a whole SoA
    /// batch) and return how many were admitted under the cap.
    ///
    /// `Ok(k)` with `k <= n` means the caller may start `k` walks;
    /// `Err(WalkLimit)` means the cap was already reached and none are
    /// admitted. The unadmitted remainder is refunded, so the counter only
    /// tracks admitted walks and a partial batch cannot trip
    /// [`ExecBudget::check`] for walks the cap allowed. At `n == 1` this
    /// admits and refuses exactly like [`ExecBudget::charge_walk`].
    pub fn charge_walks(&self, n: u64) -> Result<u64, BudgetExceeded> {
        let Some(inner) = &self.inner else { return Ok(n) };
        let prev = inner.walks.fetch_add(n, Ordering::Relaxed);
        let admitted = inner.walk_limit.saturating_sub(prev).min(n);
        if admitted < n {
            // Concurrent reservations are disjoint `[prev, prev + n)`
            // windows, so refunding this caller's own unadmitted tail
            // never gives back another caller's admitted slots.
            inner.walks.fetch_sub(n - admitted, Ordering::Relaxed);
        }
        if admitted == 0 {
            return Err(self.exceeded(BudgetReason::WalkLimit { limit: inner.walk_limit }));
        }
        Ok(admitted)
    }

    /// Charge `n` bytes of (approximate) allocation and fail if over.
    pub fn charge_bytes(&self, n: u64) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else { return Ok(()) };
        let total = inner.bytes.fetch_add(n, Ordering::Relaxed) + n;
        if total > inner.byte_limit {
            return Err(self.exceeded(BudgetReason::MemoryLimit { limit: inner.byte_limit }));
        }
        Ok(())
    }

    /// An amortizing checkpoint handle for one hot loop. The first tick
    /// performs a full check (so an already-exhausted budget is caught
    /// before any real work), then one check per [`BudgetMeter::STRIDE`].
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter { budget: self.clone(), ticks: BudgetMeter::STRIDE - 1 }
    }

    /// Fault hook — governed trie seek (no-op unless `fault-inject` is on
    /// and a plan with `fail_seek_at` is installed).
    #[inline]
    pub fn fault_seek(&self) -> Result<(), BudgetExceeded> {
        #[cfg(feature = "fault-inject")]
        {
            if let Some(faults) = self.inner.as_ref().and_then(|i| i.faults.as_ref()) {
                if let Some(n) = faults.plan.fail_seek_at {
                    let seen = faults.seeks.fetch_add(1, Ordering::Relaxed) + 1;
                    if seen == n {
                        return Err(
                            self.exceeded(BudgetReason::FaultInjected("trie seek failure"))
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Fault hook — walk start. Panics on the Kth walk when so planned
    /// (no-op unless `fault-inject` is on).
    #[inline]
    pub fn fault_walk(&self) {
        #[cfg(feature = "fault-inject")]
        {
            if let Some(faults) = self.inner.as_ref().and_then(|i| i.faults.as_ref()) {
                if let Some(k) = faults.plan.panic_walk_at {
                    let seen = faults.walks.fetch_add(1, Ordering::Relaxed) + 1;
                    if seen == k {
                        panic!("fault-inject: panic on walk {k}");
                    }
                }
            }
        }
    }

    /// Fault hook — worker startup delay (no-op unless `fault-inject` is
    /// on and this worker index is planned for a delay).
    #[inline]
    pub fn fault_worker_delay(&self, worker: usize) {
        #[cfg(feature = "fault-inject")]
        {
            if let Some(faults) = self.inner.as_ref().and_then(|i| i.faults.as_ref()) {
                if let Some((w, d)) = faults.plan.delay_worker {
                    if w == worker {
                        std::thread::sleep(d);
                    }
                }
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = worker;
    }
}

/// Builder for [`ExecBudget`].
#[derive(Debug, Default)]
pub struct ExecBudgetBuilder {
    deadline: Option<Duration>,
    tuple_limit: Option<u64>,
    walk_limit: Option<u64>,
    byte_limit: Option<u64>,
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultPlan>,
}

impl ExecBudgetBuilder {
    /// Set a wall-clock deadline relative to `build()`.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Cap intermediate tuples.
    pub fn tuple_limit(mut self, limit: u64) -> Self {
        self.tuple_limit = Some(limit);
        self
    }

    /// Cap random walks.
    pub fn walk_limit(mut self, limit: u64) -> Self {
        self.walk_limit = Some(limit);
        self
    }

    /// Cap (approximate) allocated bytes.
    pub fn byte_limit(mut self, limit: u64) -> Self {
        self.byte_limit = Some(limit);
        self
    }

    /// Attach a deterministic fault plan (`fault-inject` feature).
    #[cfg(feature = "fault-inject")]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Build the budget; the deadline clock starts now.
    pub fn build(self) -> ExecBudget {
        let start = Instant::now();
        ExecBudget {
            inner: Some(Arc::new(Inner {
                start,
                deadline: self.deadline.map(|d| start + d),
                cancelled: AtomicBool::new(false),
                tuples: AtomicU64::new(0),
                tuple_limit: self.tuple_limit.unwrap_or(u64::MAX),
                walks: AtomicU64::new(0),
                walk_limit: self.walk_limit.unwrap_or(u64::MAX),
                bytes: AtomicU64::new(0),
                byte_limit: self.byte_limit.unwrap_or(u64::MAX),
                #[cfg(feature = "fault-inject")]
                faults: self.faults.map(|plan| FaultState {
                    plan,
                    seeks: AtomicU64::new(0),
                    walks: AtomicU64::new(0),
                }),
            })),
        }
    }
}

/// An amortizing checkpoint counter owned by one loop (not shared): calls
/// [`ExecBudget::check`] only every [`BudgetMeter::STRIDE`] ticks, keeping
/// the per-iteration cost to an increment and a branch.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: ExecBudget,
    ticks: u32,
}

impl BudgetMeter {
    /// How many ticks between full checks. 512 iterations of even the
    /// tightest trie loop stay well under a tenth of a millisecond, so
    /// deadlines are honored with sub-millisecond slack.
    pub const STRIDE: u32 = 512;

    /// Cooperative checkpoint: cheap nearly always, a full
    /// [`ExecBudget::check`] every [`Self::STRIDE`] calls. Each stride also
    /// charges [`Self::STRIDE`] units to the budget's tuple counter, so a
    /// `tuple_limit` bounds total engine work to within one stride. Also
    /// drives the `fail_seek_at` fault hook, which counts *ticks*, not
    /// strides.
    #[inline]
    pub fn tick(&mut self) -> Result<(), BudgetExceeded> {
        if self.budget.inner.is_none() {
            return Ok(());
        }
        self.budget.fault_seek()?;
        self.ticks += 1;
        if self.ticks >= Self::STRIDE {
            self.ticks = 0;
            self.budget.charge_tuples(u64::from(Self::STRIDE))?;
            self.budget.check()
        } else {
            Ok(())
        }
    }

    /// The underlying budget.
    pub fn budget(&self) -> &ExecBudget {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = ExecBudget::unlimited();
        assert!(b.is_unlimited());
        b.check().unwrap();
        b.charge_tuples(u64::MAX / 2).unwrap();
        b.charge_walk().unwrap();
        let mut m = b.meter();
        for _ in 0..10_000 {
            m.tick().unwrap();
        }
        // Cancel on unlimited is a no-op.
        b.cancel();
        assert!(!b.is_cancelled());
        b.check().unwrap();
    }

    #[test]
    fn deadline_trips() {
        let b = ExecBudget::with_deadline(Duration::from_millis(5));
        b.check().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let err = b.check().unwrap_err();
        assert_eq!(err.reason, BudgetReason::DeadlineExpired);
        assert!(err.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = ExecBudget::builder().build();
        let c = b.clone();
        assert!(!c.is_cancelled());
        b.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check().unwrap_err().reason, BudgetReason::Cancelled);
    }

    #[test]
    fn tuple_limit_trips_exactly() {
        let b = ExecBudget::builder().tuple_limit(100).build();
        b.charge_tuples(60).unwrap();
        b.charge_tuples(40).unwrap(); // exactly at the cap: fine
        let err = b.charge_tuples(1).unwrap_err();
        assert_eq!(err.reason, BudgetReason::TupleLimit { limit: 100 });
    }

    #[test]
    fn walk_and_byte_limits_trip() {
        let b = ExecBudget::builder().walk_limit(2).byte_limit(10).build();
        b.charge_walk().unwrap();
        b.charge_walk().unwrap();
        assert_eq!(
            b.charge_walk().unwrap_err().reason,
            BudgetReason::WalkLimit { limit: 2 }
        );
        assert_eq!(
            b.charge_bytes(11).unwrap_err().reason,
            BudgetReason::MemoryLimit { limit: 10 }
        );
    }

    #[test]
    fn charge_walks_admits_partial_batches() {
        let b = ExecBudget::builder().walk_limit(10).build();
        assert_eq!(b.charge_walks(4).unwrap(), 4);
        assert_eq!(b.charge_walks(4).unwrap(), 4);
        // Only two slots left under the cap.
        assert_eq!(b.charge_walks(4).unwrap(), 2);
        assert_eq!(
            b.charge_walks(4).unwrap_err().reason,
            BudgetReason::WalkLimit { limit: 10 }
        );
        // Unlimited admits everything.
        assert_eq!(ExecBudget::unlimited().charge_walks(7).unwrap(), 7);
        // n == 1 agrees with charge_walk.
        let a = ExecBudget::builder().walk_limit(1).build();
        assert_eq!(a.charge_walks(1).unwrap(), 1);
        assert!(a.charge_walks(1).is_err());
        let c = ExecBudget::builder().walk_limit(1).build();
        c.charge_walk().unwrap();
        assert!(c.charge_walk().is_err());
    }

    #[test]
    fn meter_amortizes_but_still_trips() {
        let b = ExecBudget::builder().build();
        let mut m = b.meter();
        for _ in 0..BudgetMeter::STRIDE {
            m.tick().unwrap();
        }
        b.cancel();
        let mut tripped = false;
        for _ in 0..=BudgetMeter::STRIDE {
            if m.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "meter must observe cancellation within one stride");
    }

    #[test]
    fn display_formats() {
        let b = ExecBudget::builder().tuple_limit(5).build();
        b.charge_tuples(9).unwrap_err();
        let e = BudgetExceeded {
            reason: BudgetReason::TupleLimit { limit: 5 },
            elapsed: Duration::from_millis(3),
        };
        assert!(e.to_string().contains("tuple budget of 5"));
        assert!(BudgetReason::DeadlineExpired.to_string().contains("deadline"));
        assert!(BudgetReason::Cancelled.to_string().contains("cancelled"));
        assert!(BudgetReason::FaultInjected("x").to_string().contains("x"));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_seek_fires_once_at_nth() {
        let b = ExecBudget::builder()
            .faults(FaultPlan { fail_seek_at: Some(3), ..FaultPlan::default() })
            .build();
        b.fault_seek().unwrap();
        b.fault_seek().unwrap();
        let err = b.fault_seek().unwrap_err();
        assert!(matches!(err.reason, BudgetReason::FaultInjected(_)));
        // Only the Nth fires; later seeks pass.
        b.fault_seek().unwrap();
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_walk_panics_at_kth() {
        let b = ExecBudget::builder()
            .faults(FaultPlan { panic_walk_at: Some(2), ..FaultPlan::default() })
            .build();
        b.fault_walk();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.fault_walk()));
        assert!(r.is_err(), "second walk must panic");
        b.fault_walk(); // and later walks are fine
    }
}
