//! Yannakakis-style semi-join evaluation for grouped distinct counts.
//!
//! For acyclic queries, a bottom-up semi-join sweep rooted at the *chart
//! pattern* (the pattern containing both α and β — every query produced by
//! the exploration model has one) leaves exactly the root tuples that
//! participate in at least one full join result. The distinct (α, β) pairs
//! of those tuples are then read off directly, without ever enumerating
//! join results. This serves as the fast, independently-implemented ground
//! truth for the benchmark harness's error measurements.

use kgoa_index::{FxHashMap, FxHashSet, IndexOrder, IndexedGraph, LiveRange, TrieIndex};
use kgoa_query::{ExplorationQuery, Var, WalkAccess};

use crate::budget::{BudgetMeter, ExecBudget};
use crate::error::EngineError;
use crate::result::GroupedCounts;

/// One pattern's base relation: its matching rows plus where each variable
/// lives within a row.
struct Rel<'g> {
    index: &'g TrieIndex,
    range: LiveRange,
    /// (variable, row slot) pairs; the slot is the level index in the
    /// access's order (prefix slots hold constants/none).
    var_slots: Vec<(Var, usize)>,
}

impl Rel<'_> {
    fn slot_of(&self, v: Var) -> usize {
        self.var_slots
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, s)| *s)
            .expect("variable occurs in relation")
    }
}

/// A semi-join reduction of a connected Berge-acyclic pattern set, rooted
/// at a chosen pattern. After construction, a root tuple whose child join
/// values are all supported participates in at least one full join result.
struct Reduction<'g> {
    rels: Vec<Rel<'g>>,
    order: Vec<usize>,
    parent: Vec<Option<(usize, Var)>>,
    support: Vec<FxHashSet<u32>>,
    root: usize,
}

impl<'g> Reduction<'g> {
    fn new(
        ig: &'g IndexedGraph,
        patterns: &[kgoa_query::TriplePattern],
        var_count: usize,
        root: usize,
        meter: &mut BudgetMeter,
    ) -> Result<Self, EngineError> {
        let n = patterns.len();
        // Materialize base relations (constants resolved via the indexes).
        let mut rels: Vec<Rel<'g>> = Vec::with_capacity(n);
        for (pi, pattern) in patterns.iter().enumerate() {
            let access = WalkAccess::plan(pattern, None, &IndexOrder::PAPER_DEFAULT, pi)?;
            let index = ig.require(access.order);
            let range = access.resolve_live(index, None);
            let k = access.prefix_len();
            let var_slots = access
                .free
                .iter()
                .enumerate()
                .map(|(j, pos)| {
                    let v = pattern.get(*pos).as_var().expect("free level is a variable");
                    (v, k + j)
                })
                .collect();
            rels.push(Rel { index, range, var_slots });
        }

        // Pattern tree: edges labelled by the shared variable (a variable
        // in k patterns stars around its first home — Berge-acyclicity
        // makes this a tree).
        let mut var_home: Vec<Option<usize>> = vec![None; var_count];
        let mut adj: Vec<Vec<(usize, Var)>> = vec![Vec::new(); n];
        for (pi, pattern) in patterns.iter().enumerate() {
            for (v, _) in pattern.vars() {
                match var_home[v.index()] {
                    None => var_home[v.index()] = Some(pi),
                    Some(pj) => {
                        adj[pj].push((pi, v));
                        adj[pi].push((pj, v));
                    }
                }
            }
        }
        // BFS orientation away from the root.
        let mut order = vec![root];
        let mut parent: Vec<Option<(usize, Var)>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[root] = true;
        let mut head = 0;
        while head < order.len() {
            let x = order[head];
            head += 1;
            for &(y, v) in &adj[x] {
                if !visited[y] {
                    visited[y] = true;
                    parent[y] = Some((x, v));
                    order.push(y);
                }
            }
        }
        debug_assert!(order.len() == n, "validated queries are connected");

        // Bottom-up supports.
        let mut support: Vec<FxHashSet<u32>> = (0..n).map(|_| FxHashSet::default()).collect();
        for &pi in order.iter().rev() {
            if pi == root {
                continue;
            }
            let (_, join_var) = parent[pi].expect("non-root has a parent");
            let children: Vec<(usize, Var)> = (0..n)
                .filter_map(|c| parent[c].filter(|(pp, _)| *pp == pi).map(|(_, v)| (c, v)))
                .collect();
            let join_slot = rels[pi].slot_of(join_var);
            let child_slots: Vec<(usize, usize)> =
                children.iter().map(|(c, v)| (*c, rels[pi].slot_of(*v))).collect();
            let rel = &rels[pi];
            let mut live: FxHashSet<u32> = FxHashSet::default();
            for pos in rel.index.positions(rel.range) {
                meter.tick()?;
                let row = rel.index.row(pos);
                let alive =
                    child_slots.iter().all(|(c, slot)| support[*c].contains(&row[*slot]));
                if alive {
                    live.insert(row[join_slot]);
                }
            }
            support[pi] = live;
        }
        Ok(Reduction { rels, order, parent, support, root })
    }

    /// The root's children with the root-side slot of their join variable.
    fn root_child_slots(&self) -> Vec<(usize, usize)> {
        (0..self.rels.len())
            .filter_map(|c| {
                self.parent[c]
                    .filter(|(pp, _)| *pp == self.root)
                    .map(|(_, v)| (c, self.rels[self.root].slot_of(v)))
            })
            .collect()
    }
}

/// Number of distinct values a variable takes over all full join results —
/// e.g. the size of an exploration session's focus set. O(input) via
/// semi-join reduction rooted at a pattern containing the variable.
pub fn count_distinct_values(
    ig: &IndexedGraph,
    patterns: &[kgoa_query::TriplePattern],
    var_count: usize,
    var: Var,
) -> Result<u64, EngineError> {
    let root = patterns
        .iter()
        .position(|p| p.position_of(var).is_some())
        .ok_or(EngineError::Unsupported("variable does not occur in the patterns"))?;
    let mut meter = ExecBudget::unlimited().meter();
    let red = Reduction::new(ig, patterns, var_count, root, &mut meter)?;
    let child_slots = red.root_child_slots();
    let slot = red.rels[root].slot_of(var);
    let rel = &red.rels[root];
    let mut values: FxHashSet<u32> = FxHashSet::default();
    for pos in rel.index.positions(rel.range) {
        let row = rel.index.row(pos);
        if child_slots.iter().all(|(c, s)| red.support[*c].contains(&row[*s])) {
            values.insert(row[slot]);
        }
    }
    Ok(values.len() as u64)
}

/// Evaluate a grouped distinct count via semi-join reduction.
///
/// Returns [`EngineError::Unsupported`] if α and β do not co-occur in any
/// pattern (the generic engines handle that case).
pub fn yannakakis_grouped_distinct(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
) -> Result<GroupedCounts, EngineError> {
    yannakakis_grouped_distinct_governed(ig, query, &ExecBudget::unlimited())
}

/// [`yannakakis_grouped_distinct`] under a cooperative budget: every
/// relation sweep (semi-join reduction, counting DP, final read-off) is
/// metered.
pub fn yannakakis_grouped_distinct_governed(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    budget: &ExecBudget,
) -> Result<GroupedCounts, EngineError> {
    let alpha = query.alpha();
    let beta = query.beta();
    let root = query
        .patterns()
        .iter()
        .position(|p| p.position_of(alpha).is_some() && p.position_of(beta).is_some())
        .ok_or(EngineError::Unsupported("α and β must co-occur in one pattern"))?;

    let n = query.patterns().len();
    let mut meter = budget.meter();
    let red = Reduction::new(ig, query.patterns(), query.var_count(), root, &mut meter)?;
    let Reduction { rels, order, parent, support, .. } = &red;
    let child_slots = red.root_child_slots();
    let a_slot = rels[root].slot_of(alpha);
    let b_slot = rels[root].slot_of(beta);
    let rel = &rels[root];
    let mut out = GroupedCounts::new();
    if query.distinct() {
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for pos in rel.index.positions(rel.range) {
            meter.tick()?;
            let row = rel.index.row(pos);
            if child_slots.iter().all(|(c, slot)| support[*c].contains(&row[*slot]))
                && seen.insert(kgoa_index::pack2(row[a_slot], row[b_slot]))
            {
                out.add(row[a_slot], 1);
            }
        }
    } else {
        // Non-distinct grouped counts require multiplicities, which
        // semi-joins alone do not track; count completions per live root
        // tuple via the per-subtree counting DP.
        let mut counts: Vec<FxHashMap<u32, u64>> = (0..n).map(|_| FxHashMap::default()).collect();
        for &pi in order.iter().rev() {
            if pi == root {
                continue;
            }
            let (_, join_var) = parent[pi].expect("non-root has a parent");
            let kids: Vec<(usize, Var)> = (0..n)
                .filter_map(|c| parent[c].filter(|(pp, _)| *pp == pi).map(|(_, v)| (c, v)))
                .collect();
            let join_slot = rels[pi].slot_of(join_var);
            let kid_slots: Vec<(usize, usize)> =
                kids.iter().map(|(c, v)| (*c, rels[pi].slot_of(*v))).collect();
            let rel = &rels[pi];
            let mut acc: FxHashMap<u32, u64> = FxHashMap::default();
            for pos in rel.index.positions(rel.range) {
                meter.tick()?;
                let row = rel.index.row(pos);
                let mut m = 1u64;
                let mut dead = false;
                for (c, slot) in &kid_slots {
                    match counts[*c].get(&row[*slot]) {
                        Some(k) => m *= *k,
                        None => {
                            dead = true;
                            break;
                        }
                    }
                }
                if !dead {
                    *acc.entry(row[join_slot]).or_insert(0) += m;
                }
            }
            counts[pi] = acc;
        }
        for pos in rel.index.positions(rel.range) {
            meter.tick()?;
            let row = rel.index.row(pos);
            let mut m = 1u64;
            let mut dead = false;
            for (c, slot) in &child_slots {
                match counts[*c].get(&row[*slot]) {
                    Some(k) => m *= *k,
                    None => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                out.add(row[a_slot], m);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgoa_query::TriplePattern;
    use kgoa_rdf::{GraphBuilder, TermId, Triple};

    fn graph() -> (IndexedGraph, TermId, TermId) {
        // a -p-> {x, y, z}; x -q-> c1; y -q-> c1; z dead-ends.
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let n = |b: &mut GraphBuilder, s: &str| b.dict_mut().intern_iri(format!("u:{s}"));
        let a = n(&mut b, "a");
        let x = n(&mut b, "x");
        let y = n(&mut b, "y");
        let z = n(&mut b, "z");
        let c1 = n(&mut b, "c1");
        for t in [
            Triple::new(a, p, x),
            Triple::new(a, p, y),
            Triple::new(a, p, z),
            Triple::new(x, q, c1),
            Triple::new(y, q, c1),
        ] {
            b.add(t);
        }
        (IndexedGraph::build(b.build()), p, q)
    }

    #[test]
    fn distinct_counts_match_semantics() {
        let (ig, p, q) = graph();
        // Group by ?2 (object of q), count distinct ?1: c1 -> {x, y} = 2.
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            true,
        )
        .unwrap();
        let out = yannakakis_grouped_distinct(&ig, &query).unwrap();
        let c1 = ig.dict().lookup_iri("u:c1").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(c1), 2);
    }

    #[test]
    fn semi_join_prunes_dead_branches() {
        let (ig, p, q) = graph();
        // Root pattern is pattern 0 (contains α=?0? no) — use α=?1, β=?0 on
        // pattern 0, with pattern 1 as a filter: only x and y survive.
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(1),
            Var(0),
            true,
        )
        .unwrap();
        let out = yannakakis_grouped_distinct(&ig, &query).unwrap();
        assert_eq!(out.len(), 2); // groups x and y; z pruned
        let x = ig.dict().lookup_iri("u:x").unwrap();
        let z = ig.dict().lookup_iri("u:z").unwrap();
        assert_eq!(out.get(x), 1);
        assert_eq!(out.get(z), 0);
    }

    #[test]
    fn non_distinct_counts_multiplicities() {
        let (ig, p, q) = graph();
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            false,
        )
        .unwrap();
        let out = yannakakis_grouped_distinct(&ig, &query).unwrap();
        let c1 = ig.dict().lookup_iri("u:c1").unwrap();
        assert_eq!(out.get(c1), 2);
    }

    #[test]
    fn count_distinct_values_dedups_across_groups() {
        let (ig, p, q) = graph();
        // ?0 -p-> ?1 -q-> ?2: distinct ?1 over full results = {x, y}.
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            true,
        )
        .unwrap();
        let n = count_distinct_values(&ig, query.patterns(), query.var_count(), Var(1)).unwrap();
        assert_eq!(n, 2);
        // Distinct sources: just a.
        let n0 = count_distinct_values(&ig, query.patterns(), query.var_count(), Var(0)).unwrap();
        assert_eq!(n0, 1);
        // Unknown variable is unsupported.
        assert!(matches!(
            count_distinct_values(&ig, query.patterns(), query.var_count(), Var(9)),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn unsupported_when_heads_split() {
        let (ig, p, q) = graph();
        // α in pattern 0 only, β in pattern 1 only — never co-occur.
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(0),
            Var(2),
            true,
        )
        .unwrap();
        assert!(matches!(
            yannakakis_grouped_distinct(&ig, &query),
            Err(EngineError::Unsupported(_))
        ));
    }
}
