//! Query results: grouped counts keyed by the group variable's term id.

use kgoa_index::FxHashMap;
use kgoa_rdf::TermId;

/// The result of an exploration query: for every group (a binding of the
/// group variable α) the count of (distinct) β values.
///
/// Exact engines produce integer counts; online-aggregation estimates use
/// [`crate::result::GroupedEstimates`] with `f64` values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupedCounts {
    map: FxHashMap<u32, u64>,
}

impl GroupedCounts {
    /// An empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The count for a group (0 if absent).
    pub fn get(&self, group: TermId) -> u64 {
        self.map.get(&group.raw()).copied().unwrap_or(0)
    }

    /// Add `n` to a group's count.
    pub fn add(&mut self, group: u32, n: u64) {
        *self.map.entry(group).or_insert(0) += n;
    }

    /// Iterate `(group, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u64)> + '_ {
        self.map.iter().map(|(g, c)| (TermId(*g), *c))
    }

    /// The pairs sorted by descending count, then ascending group id —
    /// the order bars appear in an exploration chart.
    pub fn sorted_desc(&self) -> Vec<(TermId, u64)> {
        let mut v: Vec<(TermId, u64)> = self.iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Sum of all group counts.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }
}

impl FromIterator<(u32, u64)> for GroupedCounts {
    fn from_iter<T: IntoIterator<Item = (u32, u64)>>(iter: T) -> Self {
        let mut gc = GroupedCounts::new();
        for (g, c) in iter {
            gc.add(g, c);
        }
        gc
    }
}

/// Floating-point per-group estimates produced by online aggregation,
/// optionally with confidence-interval half-widths.
#[derive(Debug, Clone, Default)]
pub struct GroupedEstimates {
    /// Per-group estimate of the (distinct) count.
    pub estimates: FxHashMap<u32, f64>,
    /// Per-group 0.95 confidence-interval half-width (same keys).
    pub half_widths: FxHashMap<u32, f64>,
}

impl GroupedEstimates {
    /// The estimate for a group (0.0 if the group has not been seen).
    pub fn get(&self, group: TermId) -> f64 {
        self.estimates.get(&group.raw()).copied().unwrap_or(0.0)
    }

    /// The CI half-width for a group (0.0 if unseen).
    pub fn half_width(&self, group: TermId) -> f64 {
        self.half_widths.get(&group.raw()).copied().unwrap_or(0.0)
    }

    /// Number of groups with an estimate.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// True if no group has an estimate.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

/// Mean absolute error of an estimate against the exact result, computed
/// per the paper (§V-B): "the absolute difference between the exact count
/// and estimated count divided by the exact result; the reported mean
/// absolute error is the average error over all groups in the result."
///
/// Groups present only in the estimate do not enter the average (the exact
/// result defines the group set); exact zero groups cannot occur.
pub fn mean_absolute_error(exact: &GroupedCounts, estimate: &GroupedEstimates) -> f64 {
    if exact.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (g, c) in exact.iter() {
        let e = estimate.get(g);
        sum += (e - c as f64).abs() / c as f64;
    }
    sum / exact.len() as f64
}

/// Mean relative CI half-width over the exact result's groups — the curve
/// the paper plots alongside MAE (the "WJ CI"/"AJ CI" series of Fig. 8).
pub fn mean_ci_width(exact: &GroupedCounts, estimate: &GroupedEstimates) -> f64 {
    if exact.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (g, c) in exact.iter() {
        sum += estimate.half_width(g) / c as f64;
    }
    sum / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut gc = GroupedCounts::new();
        gc.add(1, 5);
        gc.add(1, 2);
        gc.add(2, 1);
        assert_eq!(gc.get(TermId(1)), 7);
        assert_eq!(gc.get(TermId(2)), 1);
        assert_eq!(gc.get(TermId(9)), 0);
        assert_eq!(gc.len(), 2);
        assert_eq!(gc.total(), 8);
    }

    #[test]
    fn sorted_desc_breaks_ties_by_id() {
        let gc: GroupedCounts = [(3u32, 5u64), (1, 9), (2, 5)].into_iter().collect();
        let sorted = gc.sorted_desc();
        assert_eq!(
            sorted,
            vec![(TermId(1), 9), (TermId(2), 5), (TermId(3), 5)]
        );
    }

    #[test]
    fn mae_matches_paper_definition() {
        let exact: GroupedCounts = [(1u32, 100u64), (2, 10)].into_iter().collect();
        let mut est = GroupedEstimates::default();
        est.estimates.insert(1, 150.0); // 50% error
        est.estimates.insert(2, 10.0); // 0% error
        let mae = mean_absolute_error(&exact, &est);
        assert!((mae - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mae_counts_missing_groups_as_full_error() {
        let exact: GroupedCounts = [(1u32, 100u64)].into_iter().collect();
        let est = GroupedEstimates::default();
        assert!((mean_absolute_error(&exact, &est) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_of_empty_exact_is_zero() {
        let exact = GroupedCounts::new();
        let est = GroupedEstimates::default();
        assert_eq!(mean_absolute_error(&exact, &est), 0.0);
    }

    #[test]
    fn ci_width_averages_relative_half_widths() {
        let exact: GroupedCounts = [(1u32, 10u64), (2, 10)].into_iter().collect();
        let mut est = GroupedEstimates::default();
        est.half_widths.insert(1, 5.0);
        assert!((mean_ci_width(&exact, &est) - 0.25).abs() < 1e-12);
    }
}
