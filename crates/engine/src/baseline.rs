//! The "off-the-shelf engine" baseline.
//!
//! The paper compares against Virtuoso, a conventional relational engine
//! whose multiway joins materialize intermediate results. Virtuoso itself
//! is closed infrastructure; this module substitutes a textbook pipeline of
//! **index nested-loop joins with full intermediate materialization**
//! followed by a grouped (distinct) count. It exhibits the same asymptotic
//! failure mode that motivates worst-case-optimal joins: the intermediate
//! result after k patterns can be much larger than both the input and the
//! final output (see DESIGN.md §3 for the substitution rationale).

use kgoa_index::{FxHashSet, IndexOrder, IndexedGraph};
use kgoa_query::{ExplorationQuery, WalkPlan};

use crate::budget::ExecBudget;
use crate::error::EngineError;
use crate::result::GroupedCounts;

/// Default budget for materialized intermediate tuples.
pub const DEFAULT_TUPLE_LIMIT: usize = 50_000_000;

/// Evaluate a grouped (distinct) count query by materializing every
/// intermediate join result.
///
/// `tuple_limit` bounds the number of simultaneously materialized tuples;
/// exceeding it returns [`EngineError::IntermediateResultLimit`] (the
/// benchmark harness reports such runs as timeouts, mirroring the paper's
/// multi-hour Virtuoso outliers).
pub fn baseline_grouped(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    tuple_limit: usize,
) -> Result<GroupedCounts, EngineError> {
    baseline_grouped_governed(ig, query, tuple_limit, &ExecBudget::unlimited())
}

/// [`baseline_grouped`] under a cooperative budget: each materialized tuple
/// is charged against the budget's tuple counter and the inner loops are
/// metered, so deadlines and cancellation interrupt even the pathological
/// blow-up cases this engine exists to exhibit.
pub fn baseline_grouped_governed(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    tuple_limit: usize,
    budget: &ExecBudget,
) -> Result<GroupedCounts, EngineError> {
    let plan = WalkPlan::canonical(query, &IndexOrder::PAPER_DEFAULT)?;
    let width = query.var_count();
    let mut meter = budget.meter();

    // Materialize pattern by pattern. Each tuple is a full-width
    // assignment; slots not yet bound hold arbitrary values.
    let mut tuples: Vec<Vec<u32>> = Vec::new();
    for (si, step) in plan.steps().iter().enumerate() {
        let index = ig.require(step.access.order);
        if si == 0 {
            let range = step.access.resolve_live(index, None);
            if range.len() > tuple_limit {
                return Err(EngineError::IntermediateResultLimit { limit: tuple_limit });
            }
            budget.charge_tuples(range.len() as u64)?;
            tuples.reserve(range.len());
            for pos in index.positions(range) {
                meter.tick()?;
                let mut t = vec![0u32; width];
                plan.extract_at(index, si, pos, &mut t);
                tuples.push(t);
            }
        } else {
            let mut next: Vec<Vec<u32>> = Vec::new();
            for t in &tuples {
                let in_value = step.in_var.map(|(v, _)| t[v.index()]);
                let range = step.access.resolve_live(index, in_value);
                if next.len() + range.len() > tuple_limit {
                    return Err(EngineError::IntermediateResultLimit { limit: tuple_limit });
                }
                budget.charge_tuples(range.len() as u64)?;
                for pos in index.positions(range) {
                    meter.tick()?;
                    let mut ext = t.clone();
                    plan.extract_at(index, si, pos, &mut ext);
                    next.push(ext);
                }
            }
            tuples = next;
        }
        if tuples.is_empty() {
            return Ok(GroupedCounts::new());
        }
    }

    // Final aggregation.
    let alpha = query.alpha().index();
    let beta = query.beta().index();
    let mut out = GroupedCounts::new();
    if query.distinct() {
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for t in &tuples {
            meter.tick()?;
            if seen.insert(kgoa_index::pack2(t[alpha], t[beta])) {
                out.add(t[alpha], 1);
            }
        }
    } else {
        for t in &tuples {
            meter.tick()?;
            out.add(t[alpha], 1);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgoa_query::{TriplePattern, Var};
    use kgoa_rdf::{GraphBuilder, TermId, Triple};

    fn star() -> (IndexedGraph, TermId, TermId) {
        // a -p-> {x, y, z}; {x, y} -q-> c1; z -q-> c2.
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let n = |b: &mut GraphBuilder, s: &str| b.dict_mut().intern_iri(format!("u:{s}"));
        let a = n(&mut b, "a");
        let x = n(&mut b, "x");
        let y = n(&mut b, "y");
        let z = n(&mut b, "z");
        let c1 = n(&mut b, "c1");
        let c2 = n(&mut b, "c2");
        for t in [
            Triple::new(a, p, x),
            Triple::new(a, p, y),
            Triple::new(a, p, z),
            Triple::new(x, q, c1),
            Triple::new(y, q, c1),
            Triple::new(z, q, c2),
        ] {
            b.add(t);
        }
        (IndexedGraph::build(b.build()), p, q)
    }

    fn query(p: TermId, q: TermId, distinct: bool) -> ExplorationQuery {
        // ?0 -p-> ?1 -q-> ?2, group by ?2, count ?1.
        ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            distinct,
        )
        .unwrap()
    }

    #[test]
    fn grouped_count() {
        let (ig, p, q) = star();
        let out = baseline_grouped(&ig, &query(p, q, false), usize::MAX).unwrap();
        let c1 = ig.dict().lookup_iri("u:c1").unwrap();
        let c2 = ig.dict().lookup_iri("u:c2").unwrap();
        assert_eq!(out.get(c1), 2);
        assert_eq!(out.get(c2), 1);
    }

    #[test]
    fn grouped_distinct_dedups() {
        // Add a duplicate-ish edge: x -q-> c1 twice is impossible (set
        // semantics), so make two p-paths to x instead via another subject.
        let (ig, p, q) = star();
        let out = baseline_grouped(&ig, &query(p, q, true), usize::MAX).unwrap();
        let c1 = ig.dict().lookup_iri("u:c1").unwrap();
        assert_eq!(out.get(c1), 2); // x and y are distinct
    }

    #[test]
    fn empty_result() {
        let (ig, p, _) = star();
        let out = baseline_grouped(&ig, &query(p, TermId(9999), false), usize::MAX).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn tuple_limit_enforced() {
        let (ig, p, q) = star();
        let err = baseline_grouped(&ig, &query(p, q, false), 2).unwrap_err();
        assert_eq!(err, EngineError::IntermediateResultLimit { limit: 2 });
    }
}
