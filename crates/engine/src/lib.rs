//! # kgoa-engine
//!
//! Exact join engines for exploration queries (§IV-B of the paper):
//!
//! - [`LftjEngine`] — LeapFrog Trie Join, the worst-case-optimal baseline;
//! - [`CtjEngine`] — Cached Trie Join, LFTJ plus per-step suffix caches
//!   (the paper's exact engine, and the exact-computation substrate that
//!   Audit Join defers to);
//! - [`BaselineEngine`] — a conventional materializing join pipeline
//!   standing in for Virtuoso (see DESIGN.md §3);
//! - [`YannakakisEngine`] — semi-join reduction, the harness's independent
//!   ground truth for distinct counts.
//!
//! All engines implement [`CountEngine`] and agree exactly; the
//! differential tests in `tests/` check this on randomized inputs.
//! [`CtjCounter`] additionally exposes the cached count / existence /
//! walk-success-probability computations that `kgoa-core`'s Audit Join
//! builds on.

#![warn(missing_docs)]

pub mod baseline;
pub mod budget;
pub mod ctj;
pub mod engines;
pub mod error;
pub mod lftj;
pub mod partition;
pub mod result;
pub mod yannakakis;

pub use baseline::{baseline_grouped, baseline_grouped_governed, DEFAULT_TUPLE_LIMIT};
#[cfg(feature = "fault-inject")]
pub use budget::FaultPlan;
pub use budget::{BudgetExceeded, BudgetMeter, BudgetReason, ExecBudget, ExecBudgetBuilder};
pub use ctj::{ctj_count, CacheStats, CtjCounter, StepCacheStats};
pub use engines::{BaselineEngine, CountEngine, CtjEngine, LftjEngine, YannakakisEngine};
pub use error::EngineError;
pub use lftj::{lftj_count, lftj_count_governed, LftjExec, LftjVarStats};
pub use partition::{
    chunk_bounds, ctj_count_partition, ctj_distinct_partition, key_windows,
    lftj_count_partition, lftj_distinct_partition, lftj_rank0_keys, merge_counts,
    merge_distinct_pairs,
};
pub use result::{mean_absolute_error, mean_ci_width, GroupedCounts, GroupedEstimates};
pub use yannakakis::{
    count_distinct_values, yannakakis_grouped_distinct, yannakakis_grouped_distinct_governed,
};
