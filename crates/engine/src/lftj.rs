//! LeapFrog Trie Join (Veldhuizen 2014): a worst-case-optimal backtracking
//! join over trie iterators (§IV-B of the paper).
//!
//! Variables are processed in the plan's global order. For each variable,
//! the cursors of all patterns containing it are positioned at that
//! variable's trie level and *leapfrogged*: repeatedly seek every cursor to
//! the current maximum key until all agree, yielding exactly the
//! intersection of the per-pattern key sets. Constants and already-bound
//! variables along the way are navigated by `seek`.
//!
//! This implementation enumerates every full assignment; it deliberately
//! does **no** caching — that is what Cached Trie Join adds on top (and the
//! CTJ-vs-LFTJ benchmark measures exactly this difference).

use kgoa_index::{IndexedGraph, TrieCursor};
use kgoa_query::{ExplorationQuery, JoinLevel, JoinPlan};

use crate::budget::{BudgetExceeded, BudgetMeter, ExecBudget};
use crate::error::EngineError;

/// Per-variable operator counters for one LFTJ execution, indexed by the
/// variable's rank in the plan order. Plain `u64`s bumped unconditionally
/// (an increment next to a trie seek is noise); read them back with
/// [`LftjExec::op_stats`] or let [`LftjExec::run_governed`] attribute
/// them to the active [`kgoa_obs::profile`] scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LftjVarStats {
    /// Leapfrog alignment rounds at this variable's level.
    pub probes: u64,
    /// Trie `seek` calls issued for this variable (navigation + leapfrog).
    pub seeks: u64,
    /// `next_key` advances past a matched key at this level.
    pub next_keys: u64,
    /// Seeks that fell through to the exponential-then-binary gallop.
    pub gallops: u64,
    /// Seeks resolved by the small-range linear fast path (including
    /// no-op seeks that were already positioned).
    pub linear_hits: u64,
}

impl LftjVarStats {
    /// Record one seek together with how the cursor resolved it.
    #[inline]
    fn note_seek(&mut self, outcome: kgoa_index::SeekOutcome) {
        self.seeks += 1;
        match outcome {
            kgoa_index::SeekOutcome::Gallop => self.gallops += 1,
            kgoa_index::SeekOutcome::Linear => self.linear_hits += 1,
        }
    }
}

/// An LFTJ execution over one query. Construct with [`LftjExec::new`], then
/// call [`LftjExec::run`] with a callback receiving each full assignment
/// (indexed by variable id).
pub struct LftjExec<'g> {
    plan: JoinPlan,
    cursors: Vec<TrieCursor<'g>>,
    assignment: Vec<u32>,
    /// Per-rank operator counters (see [`LftjVarStats`]).
    op_stats: Vec<LftjVarStats>,
    /// True once a constant-only pattern has been verified absent — the
    /// result is empty regardless of the rest.
    empty: bool,
    /// The recursion reports results at this rank (normally the full plan
    /// depth; [`LftjExec::rank0_keys`] truncates it to harvest the first
    /// variable's intersection without enumerating deeper levels).
    max_rank: usize,
    /// Inclusive key window for the first plan variable; partitioned runs
    /// ([`crate::partition`]) restrict each worker to a disjoint window.
    rank0_window: Option<(u32, u32)>,
}

impl<'g> LftjExec<'g> {
    /// Prepare an execution for the given plan.
    pub fn new(
        ig: &'g IndexedGraph,
        query: &ExplorationQuery,
        plan: JoinPlan,
    ) -> Result<Self, EngineError> {
        let mut cursors = Vec::with_capacity(query.patterns().len());
        let mut empty = false;
        for (pi, pattern) in query.patterns().iter().enumerate() {
            let access = &plan.accesses()[pi];
            let index = ig.require(access.order);
            cursors.push(TrieCursor::over_index(index));
            if pattern.var_count() == 0 {
                // Fully-constant pattern: a simple containment check.
                let row = access.levels.map(|l| match l {
                    JoinLevel::Const(c) => c.raw(),
                    JoinLevel::Var(_) => unreachable!("no vars in constant pattern"),
                });
                if !index.contains_row(row[0], row[1], row[2]) {
                    empty = true;
                }
            }
        }
        let assignment = vec![0u32; query.var_count()];
        let op_stats = vec![LftjVarStats::default(); plan.var_order().len()];
        let max_rank = plan.var_order().len();
        Ok(LftjExec { plan, cursors, assignment, op_stats, empty, max_rank, rank0_window: None })
    }

    /// Restrict the first plan variable to the inclusive key window
    /// `[lo, hi]`. Used by partitioned evaluation: disjoint windows make
    /// disjoint result sets, so per-partition counts merge by addition.
    pub fn set_rank0_window(&mut self, lo: u32, hi: u32) {
        self.rank0_window = Some((lo, hi));
    }

    /// The first plan variable's surviving keys — the leapfrog intersection
    /// at rank 0 only, without enumerating deeper levels. This is the
    /// partition domain for parallel runs; keys come back ascending.
    pub fn rank0_keys(&mut self, budget: &ExecBudget) -> Result<Vec<u32>, BudgetExceeded> {
        if self.empty {
            return Ok(Vec::new());
        }
        let var0 = self.plan.var_order()[0].index();
        let saved = self.max_rank;
        self.max_rank = 1;
        let mut keys = Vec::new();
        let mut meter = budget.meter();
        let result = self.solve(0, &mut meter, &mut |asg: &[u32]| keys.push(asg[var0]));
        self.max_rank = saved;
        result?;
        Ok(keys)
    }

    /// Per-variable operator counters accumulated so far, indexed by plan
    /// rank (same order as `plan.var_order()`).
    pub fn op_stats(&self) -> &[LftjVarStats] {
        &self.op_stats
    }

    /// Emit one attribution leaf per plan variable into the active
    /// profile scope (no-op when none). Called after a run; also usable
    /// directly by callers that drive [`LftjExec::run`] themselves.
    pub fn profile_emit(&self) {
        if !kgoa_obs::profile::active() {
            return;
        }
        for (rank, st) in self.op_stats.iter().enumerate() {
            let var = self.plan.var_order()[rank];
            kgoa_obs::profile::leaf(
                format!("lftj.v{rank}[?{}]", var.index()),
                &[
                    ("probes", st.probes),
                    ("seeks", st.seeks),
                    ("next_keys", st.next_keys),
                    ("gallops", st.gallops),
                    ("linear_hits", st.linear_hits),
                ],
            );
        }
    }

    /// Run the join, invoking `on_result` once per full assignment.
    pub fn run(&mut self, mut on_result: impl FnMut(&[u32])) {
        self.run_governed(&ExecBudget::unlimited(), |a| on_result(a))
            .expect("unlimited budget cannot trip");
    }

    /// Run the join under a cooperative budget. On a tripped checkpoint the
    /// enumeration stops where it is and the violation is returned; results
    /// already reported through `on_result` are a valid prefix.
    pub fn run_governed(
        &mut self,
        budget: &ExecBudget,
        mut on_result: impl FnMut(&[u32]),
    ) -> Result<(), BudgetExceeded> {
        if self.empty {
            return Ok(());
        }
        let _prof = kgoa_obs::profile::span("engine.lftj.run");
        let mut meter = budget.meter();
        let result = self.solve(0, &mut meter, &mut on_result);
        self.profile_emit();
        result
    }

    fn solve(
        &mut self,
        rank: usize,
        meter: &mut BudgetMeter,
        on_result: &mut impl FnMut(&[u32]),
    ) -> Result<(), BudgetExceeded> {
        meter.tick()?;
        if rank == self.max_rank {
            on_result(&self.assignment);
            return Ok(());
        }
        // Navigate every cursor containing this variable down to the
        // variable's level, seeking constants and bound variables on the
        // way; record descents for unwinding.
        let occs: &[(usize, usize)] = self.plan.occurrences(rank);
        debug_assert!(!occs.is_empty(), "every variable occurs somewhere");
        let occs = occs.to_vec();
        let mut descended: Vec<(usize, usize)> = Vec::with_capacity(occs.len());
        let mut ok = true;
        'nav: for &(pi, li) in &occs {
            let mut opened = 0usize;
            while self.cursors[pi].depth() < li + 1 {
                let lvl = self.cursors[pi].depth();
                self.cursors[pi].open();
                opened += 1;
                match self.plan.accesses()[pi].levels[lvl] {
                    JoinLevel::Const(c) => {
                        let c = c.raw();
                        let outcome = self.cursors[pi].seek(c);
                        self.op_stats[rank].note_seek(outcome);
                        if self.cursors[pi].at_end() || self.cursors[pi].key() != c {
                            ok = false;
                        }
                    }
                    JoinLevel::Var(w) => {
                        if self.plan.rank(w) < rank {
                            let val = self.assignment[w.index()];
                            let outcome = self.cursors[pi].seek(val);
                            self.op_stats[rank].note_seek(outcome);
                            if self.cursors[pi].at_end() || self.cursors[pi].key() != val {
                                ok = false;
                            }
                        } else {
                            debug_assert_eq!(self.plan.rank(w), rank);
                            debug_assert_eq!(lvl, li);
                            if self.cursors[pi].at_end() {
                                ok = false;
                            }
                        }
                    }
                }
                if !ok {
                    descended.push((pi, opened));
                    break 'nav;
                }
            }
            if self.cursors[pi].depth() == li + 1 && opened == 0 {
                // Already positioned from an earlier shared variable; the
                // level must be open and valid.
            }
            descended.push((pi, opened));
        }

        // On a tripped budget the error is held until the cursors are
        // unwound, so the executor stays structurally consistent.
        let mut result = Ok(());
        if ok {
            result = self.leapfrog(rank, &occs, meter, on_result);
        }

        for &(pi, opened) in descended.iter().rev() {
            for _ in 0..opened {
                self.cursors[pi].up();
            }
        }
        result
    }

    /// Classic leapfrog intersection at the variable's levels, recursing on
    /// every common key.
    fn leapfrog(
        &mut self,
        rank: usize,
        occs: &[(usize, usize)],
        meter: &mut BudgetMeter,
        on_result: &mut impl FnMut(&[u32]),
    ) -> Result<(), BudgetExceeded> {
        // All cursors are open at the variable's level and not at end.
        let var = self.plan.var_order()[rank];
        let window = if rank == 0 { self.rank0_window } else { None };
        'outer: loop {
            meter.tick()?;
            kgoa_obs::metrics::LFTJ_PROBES.inc();
            self.op_stats[rank].probes += 1;
            // Align all cursors on a common key — seeded with the window's
            // lower bound so a partitioned run skips straight to its slice.
            let mut maxk = window.map_or(0, |(lo, _)| lo);
            for &(pi, _) in occs {
                maxk = maxk.max(self.cursors[pi].key());
            }
            loop {
                let mut all_eq = true;
                for &(pi, _) in occs {
                    if self.cursors[pi].key() < maxk {
                        let outcome = self.cursors[pi].seek(maxk);
                        self.op_stats[rank].note_seek(outcome);
                        if self.cursors[pi].at_end() {
                            break 'outer;
                        }
                        maxk = maxk.max(self.cursors[pi].key());
                        all_eq = false;
                    }
                }
                if all_eq {
                    break;
                }
            }
            if let Some((_, hi)) = window {
                if maxk > hi {
                    // Past the partition's upper bound: this slice is done.
                    break 'outer;
                }
            }
            self.assignment[var.index()] = maxk;
            self.solve(rank + 1, meter, on_result)?;
            // Advance the first cursor past the matched key.
            let (p0, _) = occs[0];
            self.op_stats[rank].next_keys += 1;
            self.cursors[p0].next_key();
            if self.cursors[p0].at_end() {
                break;
            }
        }
        Ok(())
    }
}

/// Count all full assignments (`|Γ|`, the join size) with LFTJ.
pub fn lftj_count(ig: &IndexedGraph, query: &ExplorationQuery) -> Result<u64, EngineError> {
    lftj_count_governed(ig, query, &ExecBudget::unlimited())
}

/// [`lftj_count`] under a cooperative budget.
pub fn lftj_count_governed(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    budget: &ExecBudget,
) -> Result<u64, EngineError> {
    let plan = JoinPlan::canonical(query, &kgoa_index::IndexOrder::PAPER_DEFAULT)?;
    let mut exec = LftjExec::new(ig, query, plan)?;
    let mut n = 0u64;
    exec.run_governed(budget, |_| n += 1)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgoa_query::{TriplePattern, Var};
    use kgoa_rdf::{GraphBuilder, TermId, Triple};

    /// Builds the running-example shape: a diamond graph
    /// a -p-> {x, y}, {x, y} -q-> m, m -r-> z.
    fn diamond() -> (IndexedGraph, TermId, TermId, TermId) {
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let r = b.dict_mut().intern_iri("u:r");
        let node = |b: &mut GraphBuilder, n: &str| b.dict_mut().intern_iri(format!("u:{n}"));
        let a = node(&mut b, "a");
        let x = node(&mut b, "x");
        let y = node(&mut b, "y");
        let m = node(&mut b, "m");
        let z = node(&mut b, "z");
        for t in [
            Triple::new(a, p, x),
            Triple::new(a, p, y),
            Triple::new(x, q, m),
            Triple::new(y, q, m),
            Triple::new(m, r, z),
        ] {
            b.add(t);
        }
        (IndexedGraph::build(b.build()), p, q, r)
    }

    #[test]
    fn counts_paths_through_diamond() {
        let (ig, p, q, r) = diamond();
        // ?0 -p-> ?1 -q-> ?2 -r-> ?3 : two paths (through x and y).
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
                TriplePattern::new(Var(2), r, Var(3)),
            ],
            Var(3),
            Var(2),
            false,
        )
        .unwrap();
        assert_eq!(lftj_count(&ig, &query).unwrap(), 2);
    }

    #[test]
    fn enumerates_full_assignments() {
        let (ig, p, q, _) = diamond();
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            false,
        )
        .unwrap();
        let plan = JoinPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut exec = LftjExec::new(&ig, &query, plan).unwrap();
        let mut rows: Vec<Vec<u32>> = Vec::new();
        exec.run(|a| rows.push(a.to_vec()));
        assert_eq!(rows.len(), 2);
        let x = ig.dict().lookup_iri("u:x").unwrap().raw();
        let y = ig.dict().lookup_iri("u:y").unwrap().raw();
        let mids: Vec<u32> = rows.iter().map(|r| r[1]).collect();
        assert!(mids.contains(&x) && mids.contains(&y));
    }

    #[test]
    fn op_stats_attribute_work_per_variable() {
        let (ig, p, q, _) = diamond();
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            false,
        )
        .unwrap();
        let plan = JoinPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut exec = LftjExec::new(&ig, &query, plan).unwrap();
        exec.run(|_| {});
        let stats = exec.op_stats();
        assert_eq!(stats.len(), 3);
        // Every variable level ran at least one leapfrog round, and the
        // join did real work somewhere.
        assert!(stats.iter().all(|s| s.probes > 0), "{stats:?}");
        assert!(stats.iter().map(|s| s.next_keys).sum::<u64>() > 0, "{stats:?}");
        // Every seek resolved either on the linear fast path or by gallop.
        for s in stats {
            assert_eq!(s.gallops + s.linear_hits, s.seeks, "{stats:?}");
        }
    }

    #[test]
    fn empty_when_predicate_missing() {
        let (ig, p, _, _) = diamond();
        let missing = TermId(9999);
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), missing, Var(2)),
            ],
            Var(2),
            Var(1),
            false,
        )
        .unwrap();
        assert_eq!(lftj_count(&ig, &query).unwrap(), 0);
    }

    #[test]
    fn constant_object_restricts() {
        let (ig, p, q, _) = diamond();
        let m = ig.dict().lookup_iri("u:m").unwrap();
        // ?0 -p-> ?1 -q-> m : two results.
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, m),
            ],
            Var(0),
            Var(1),
            false,
        )
        .unwrap();
        assert_eq!(lftj_count(&ig, &query).unwrap(), 2);
        // With a non-object constant: zero.
        let a = ig.dict().lookup_iri("u:a").unwrap();
        let query0 = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, a),
            ],
            Var(0),
            Var(1),
            false,
        )
        .unwrap();
        assert_eq!(lftj_count(&ig, &query0).unwrap(), 0);
    }

    #[test]
    fn variable_predicate_join() {
        let (ig, _, _, _) = diamond();
        // ?0 ?1 ?2 — all 5 triples.
        let query = ExplorationQuery::new(
            vec![TriplePattern::new(Var(0), Var(1), Var(2))],
            Var(1),
            Var(0),
            false,
        )
        .unwrap();
        assert_eq!(lftj_count(&ig, &query).unwrap(), 5);
    }

    #[test]
    fn single_pattern_with_constant() {
        let (ig, p, _, _) = diamond();
        let query = ExplorationQuery::new(
            vec![TriplePattern::new(Var(0), p, Var(1))],
            Var(0),
            Var(1),
            false,
        )
        .unwrap();
        assert_eq!(lftj_count(&ig, &query).unwrap(), 2);
    }
}
