//! Cached Trie Join (Kalinsky, Etsion & Kimelfeld, EDBT 2017) — the exact
//! engine of §IV-B.
//!
//! CTJ augments the worst-case-optimal trie join with caches of partial
//! results, guided by the query's tree decomposition; "in the use-case of
//! this paper, the tree decomposition is easily determined by the path
//! formed by the query". For the tree-shaped exploration queries, the
//! decomposition coincides with the walk plan, so this implementation runs
//! the trie join as a recursion over walk steps and memoizes, per step, the
//! aggregate over all suffix completions keyed by the values of the
//! variables the suffix depends on (almost always exactly one — the step's
//! join variable). Example IV.1 of the paper is precisely this effect: the
//! diamond-shaped join recomputes suffix counts under LFTJ but hits the
//! cache under CTJ.
//!
//! Three "semirings" share the machinery, because Audit Join needs all of
//! them (§IV-D):
//! - **count**: `u64` number of completions (`|Γ_δ|`),
//! - **exists**: early-exiting boolean (distinct counting),
//! - **mass**: `f64` probability that a random walk continuing from here
//!   completes (`Σ_extensions Π 1/dᵢ`), used by the unbiased distinct
//!   estimator.

use kgoa_index::{pack2, FxHashMap, IndexedGraph};
use kgoa_query::{ExplorationQuery, Var, WalkPlan};

use crate::budget::{BudgetExceeded, BudgetMeter, ExecBudget};

/// Per-step cache statistics, reported by the cache-effectiveness ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memo hits across all semirings.
    pub hits: u64,
    /// Memo misses (entries computed).
    pub misses: u64,
}

/// Cache and enumeration counters for **one** walk-plan step (one node of
/// the CTJ recursion tree), aggregated across all semirings. Collected
/// unconditionally — plain `u64` bumps next to hash-map probes are noise —
/// and attributed to the active profile via [`CtjCounter::profile_emit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepCacheStats {
    /// Memo hits at this step.
    pub hits: u64,
    /// Memo misses (suffix aggregates computed) at this step.
    pub misses: u64,
    /// Candidate rows enumerated at this step while computing misses.
    pub rows: u64,
}

/// Which variables a step's suffix depends on, and how to build memo keys.
#[derive(Debug, Clone)]
enum DepKey {
    /// The suffix from this step is constant (no earlier bindings used).
    None,
    /// Depends on one variable.
    One(Var),
    /// Depends on two variables.
    Two(Var, Var),
    /// Depends on three or more variables — not memoized (does not occur
    /// for exploration-shaped queries, but kept correct).
    Many,
}

impl DepKey {
    fn key(&self, assignment: &[u32]) -> Option<u64> {
        match self {
            DepKey::None => Some(0),
            DepKey::One(v) => Some(u64::from(assignment[v.index()])),
            DepKey::Two(v, w) => Some(pack2(assignment[v.index()], assignment[w.index()])),
            DepKey::Many => None,
        }
    }
}

/// The CTJ evaluator: a walk-plan recursion with per-step suffix caches.
///
/// One `CtjCounter` accumulates caches across *many* invocations — this is
/// what lets Audit Join reuse exact partial computations between random
/// walks ("Audit Join automatically leverages the caching of CTJ,
/// potentially avoiding re-computation when building the same prefix δ in
/// later random walks", §IV-D).
pub struct CtjCounter<'g> {
    ig: &'g IndexedGraph,
    /// Shared so co-operating executors (Audit Join's estimator, pinned
    /// `Pr(a,b)` computations, parallel partitions) reuse one plan.
    plan: std::sync::Arc<WalkPlan>,
    deps: Vec<DepKey>,
    /// Raw dependency sets behind [`CtjCounter::suffix_dep_vars`] (sorted).
    dep_vars: Vec<Vec<Var>>,
    /// `collapse[i]`: no step after `i` reads `i`'s out-variables, so every
    /// row of `i`'s range leads to an identical suffix (see the suffix
    /// multiplication in [`CtjCounter::try_count_from`]).
    collapse: Vec<bool>,
    memo_count: Vec<FxHashMap<u64, u64>>,
    memo_exists: Vec<FxHashMap<u64, bool>>,
    memo_mass: Vec<FxHashMap<u64, f64>>,
    stats: CacheStats,
    step_stats: Vec<StepCacheStats>,
}

impl<'g> CtjCounter<'g> {
    /// Create an evaluator for a query under a given walk plan.
    pub fn new(ig: &'g IndexedGraph, plan: impl Into<std::sync::Arc<WalkPlan>>) -> Self {
        let plan = plan.into();
        let n = plan.len();
        let dep_vars = compute_deps(&plan);
        let deps: Vec<DepKey> = dep_vars
            .iter()
            .map(|vars| match vars.as_slice() {
                [] => DepKey::None,
                [v] => DepKey::One(*v),
                [v, w] => DepKey::Two(*v, *w),
                _ => DepKey::Many,
            })
            .collect();
        let collapse = plan
            .steps()
            .iter()
            .enumerate()
            .map(|(i, s)| s.out_vars.iter().all(|v| !dep_vars[i + 1].contains(v)))
            .collect();
        CtjCounter {
            ig,
            plan,
            deps,
            dep_vars,
            collapse,
            memo_count: vec![FxHashMap::default(); n + 1],
            memo_exists: vec![FxHashMap::default(); n + 1],
            memo_mass: vec![FxHashMap::default(); n + 1],
            stats: CacheStats::default(),
            step_stats: vec![StepCacheStats::default(); n],
        }
    }

    /// Variables bound before `step` that the suffix from `step` still
    /// reads (sorted). This is the suffix's memo key; the value `1` means
    /// the suffix is a function of one earlier binding.
    pub fn suffix_dep_vars(&self, step: usize) -> &[Var] {
        &self.dep_vars[step]
    }

    /// True when no later step reads `step`'s out-variables: all rows of
    /// `step`'s candidate range lead to the *same* suffix, so aggregates
    /// multiply by the fan-out instead of enumerating it.
    pub fn suffix_collapses(&self, step: usize) -> bool {
        self.collapse[step]
    }

    /// The walk plan driving the recursion.
    pub fn plan(&self) -> &WalkPlan {
        &self.plan
    }

    /// The indexed graph.
    pub fn graph(&self) -> &'g IndexedGraph {
        self.ig
    }

    /// Cache statistics so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Per-step cache/enumeration counters, indexed by walk-plan step.
    pub fn step_stats(&self) -> &[StepCacheStats] {
        &self.step_stats
    }

    /// Attribute one enumerated row to `step`. Drivers that enumerate a
    /// prefix themselves (e.g. [`crate::CtjEngine`]'s group recursion)
    /// call this so their rows land in the same per-step counters as the
    /// memoized suffix work.
    pub fn note_row(&mut self, step: usize) {
        self.step_stats[step].rows += 1;
    }

    /// Emit one attribution leaf per walk-plan step (one per CTJ cache
    /// node) into the active profile scope; no-op when none.
    pub fn profile_emit(&self) {
        if !kgoa_obs::profile::active() {
            return;
        }
        for (i, (st, step)) in self.step_stats.iter().zip(self.plan.steps()).enumerate() {
            kgoa_obs::profile::leaf(
                format!("ctj.step{i}[p{}]", step.pattern_idx),
                &[("cache_hits", st.hits), ("cache_misses", st.misses), ("rows", st.rows)],
            );
        }
    }


    /// Drop all cached entries (used between ablation runs).
    pub fn clear_cache(&mut self) {
        for m in &mut self.memo_count {
            m.clear();
        }
        for m in &mut self.memo_exists {
            m.clear();
        }
        for m in &mut self.memo_mass {
            m.clear();
        }
        self.stats = CacheStats::default();
        self.step_stats.fill(StepCacheStats::default());
    }

    /// Number of completions of the suffix starting at `step`, given the
    /// bindings in `assignment` (`|Γ_δ|` where δ bound steps `0..step`).
    pub fn count_from(&mut self, step: usize, assignment: &mut [u32]) -> u64 {
        let mut meter = ExecBudget::unlimited().meter();
        self.try_count_from(step, assignment, &mut meter)
            .expect("unlimited budget cannot trip")
    }

    /// [`CtjCounter::count_from`] under a cooperative budget: the recursion
    /// ticks the meter per enumerated row and aborts when it trips. Partial
    /// results are never memoized, so the caches stay exact.
    pub fn try_count_from(
        &mut self,
        step: usize,
        assignment: &mut [u32],
        meter: &mut BudgetMeter,
    ) -> Result<u64, BudgetExceeded> {
        if step == self.plan.len() {
            return Ok(1);
        }
        let key = self.deps[step].key(assignment);
        if let Some(k) = key {
            if let Some(&c) = self.memo_count[step].get(&k) {
                self.stats.hits += 1;
                self.step_stats[step].hits += 1;
                kgoa_obs::metrics::CTJ_CACHE_HITS.inc();
                return Ok(c);
            }
        }
        let s = &self.plan.steps()[step];
        let index = self.ig.require(s.access.order);
        let in_value = s.in_var.map(|(v, _)| assignment[v.index()]);
        let range = s.access.resolve_live(index, in_value);
        let total = if s.out_vars.is_empty() || self.collapse[step] {
            // No new bindings — or bindings nothing downstream reads:
            // every candidate row leads to the same suffix, so multiply by
            // the fan-out instead of enumerating it.
            meter.tick()?;
            if range.is_empty() {
                0
            } else {
                (range.len() as u64)
                    .checked_mul(self.try_count_from(step + 1, assignment, meter)?)
                    .expect("join size overflow")
            }
        } else {
            let mut total = 0u64;
            for pos in index.positions(range) {
                meter.tick()?;
                self.step_stats[step].rows += 1;
                self.plan.extract_at(index, step, pos, assignment);
                total += self.try_count_from(step + 1, assignment, meter)?;
            }
            total
        };
        if let Some(k) = key {
            self.memo_count[step].insert(k, total);
            self.stats.misses += 1;
            self.step_stats[step].misses += 1;
            kgoa_obs::metrics::CTJ_CACHE_MISSES.inc();
        }
        Ok(total)
    }

    /// True if the suffix starting at `step` has at least one completion.
    pub fn exists_from(&mut self, step: usize, assignment: &mut [u32]) -> bool {
        let mut meter = ExecBudget::unlimited().meter();
        self.try_exists_from(step, assignment, &mut meter)
            .expect("unlimited budget cannot trip")
    }

    /// [`CtjCounter::exists_from`] under a cooperative budget.
    pub fn try_exists_from(
        &mut self,
        step: usize,
        assignment: &mut [u32],
        meter: &mut BudgetMeter,
    ) -> Result<bool, BudgetExceeded> {
        if step == self.plan.len() {
            return Ok(true);
        }
        let key = self.deps[step].key(assignment);
        if let Some(k) = key {
            if let Some(&e) = self.memo_exists[step].get(&k) {
                self.stats.hits += 1;
                self.step_stats[step].hits += 1;
                kgoa_obs::metrics::CTJ_CACHE_HITS.inc();
                return Ok(e);
            }
        }
        let s = &self.plan.steps()[step];
        let index = self.ig.require(s.access.order);
        let in_value = s.in_var.map(|(v, _)| assignment[v.index()]);
        let range = s.access.resolve_live(index, in_value);
        let mut found = false;
        if s.out_vars.is_empty() || self.collapse[step] {
            // Suffix is independent of this step's bindings: one
            // representative decides existence for the whole range.
            meter.tick()?;
            if !range.is_empty() {
                found = self.try_exists_from(step + 1, assignment, meter)?;
            }
        } else {
            for pos in index.positions(range) {
                meter.tick()?;
                self.step_stats[step].rows += 1;
                self.plan.extract_at(index, step, pos, assignment);
                if self.try_exists_from(step + 1, assignment, meter)? {
                    found = true;
                    break;
                }
            }
        }
        if let Some(k) = key {
            self.memo_exists[step].insert(k, found);
            self.stats.misses += 1;
            self.step_stats[step].misses += 1;
            kgoa_obs::metrics::CTJ_CACHE_MISSES.inc();
        }
        Ok(found)
    }

    /// Probability that a random walk at `step` (with the given bindings)
    /// continues all the way to a full path: `Σ_extensions Π_{i≥step} 1/dᵢ`.
    pub fn mass_from(&mut self, step: usize, assignment: &mut [u32]) -> f64 {
        let mut meter = ExecBudget::unlimited().meter();
        self.try_mass_from(step, assignment, &mut meter)
            .expect("unlimited budget cannot trip")
    }

    /// [`CtjCounter::mass_from`] under a cooperative budget.
    pub fn try_mass_from(
        &mut self,
        step: usize,
        assignment: &mut [u32],
        meter: &mut BudgetMeter,
    ) -> Result<f64, BudgetExceeded> {
        if step == self.plan.len() {
            return Ok(1.0);
        }
        let key = self.deps[step].key(assignment);
        if let Some(k) = key {
            if let Some(&m) = self.memo_mass[step].get(&k) {
                self.stats.hits += 1;
                self.step_stats[step].hits += 1;
                kgoa_obs::metrics::CTJ_CACHE_HITS.inc();
                return Ok(m);
            }
        }
        let s = &self.plan.steps()[step];
        let index = self.ig.require(s.access.order);
        let in_value = s.in_var.map(|(v, _)| assignment[v.index()]);
        let range = s.access.resolve_live(index, in_value);
        let mass = if range.is_empty() {
            0.0
        } else if s.out_vars.is_empty() || self.collapse[step] {
            // d candidates, each reached with probability 1/d and leading
            // to the same suffix: Σ = d · (1/d) · suffix.
            meter.tick()?;
            self.try_mass_from(step + 1, assignment, meter)?
        } else {
            let d = range.len() as f64;
            let mut sum = 0.0;
            for pos in index.positions(range) {
                meter.tick()?;
                self.step_stats[step].rows += 1;
                self.plan.extract_at(index, step, pos, assignment);
                sum += self.try_mass_from(step + 1, assignment, meter)?;
            }
            sum / d
        };
        if let Some(k) = key {
            self.memo_mass[step].insert(k, mass);
            self.stats.misses += 1;
            self.step_stats[step].misses += 1;
            kgoa_obs::metrics::CTJ_CACHE_MISSES.inc();
        }
        Ok(mass)
    }
}

/// For each step, the set of variables bound before it that its suffix
/// still reads (i.e. the memo key of the suffix function). Sorted.
fn compute_deps(plan: &WalkPlan) -> Vec<Vec<Var>> {
    let n = plan.len();
    let mut dep_sets: Vec<Vec<Var>> = vec![Vec::new(); n + 1];
    for (j, step) in plan.steps().iter().enumerate() {
        if let Some((v, _)) = step.in_var {
            let bound_at = plan.binder_step(v);
            for deps in dep_sets.iter_mut().take(j + 1).skip(bound_at + 1) {
                if !deps.contains(&v) {
                    deps.push(v);
                }
            }
        }
    }
    for vars in &mut dep_sets {
        vars.sort_unstable();
    }
    dep_sets
}

/// Exact join size (`|Γ|`) with CTJ.
pub fn ctj_count(ig: &IndexedGraph, query: &ExplorationQuery) -> Result<u64, crate::EngineError> {
    let plan = WalkPlan::canonical(query, &kgoa_index::IndexOrder::PAPER_DEFAULT)?;
    let mut counter = CtjCounter::new(ig, plan);
    let mut assignment = vec![0u32; query.var_count()];
    Ok(counter.count_from(0, &mut assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgoa_query::TriplePattern;
    use kgoa_rdf::{GraphBuilder, TermId, Triple};

    /// Diamond: a -p-> {x,y} -q-> m -r-> z (join sizes known by hand).
    fn diamond() -> (IndexedGraph, TermId, TermId, TermId) {
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let r = b.dict_mut().intern_iri("u:r");
        let ids: Vec<TermId> =
            ["a", "x", "y", "m", "z"].iter().map(|n| b.dict_mut().intern_iri(format!("u:{n}"))).collect();
        let (a, x, y, m, z) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        for t in [
            Triple::new(a, p, x),
            Triple::new(a, p, y),
            Triple::new(x, q, m),
            Triple::new(y, q, m),
            Triple::new(m, r, z),
        ] {
            b.add(t);
        }
        (IndexedGraph::build(b.build()), p, q, r)
    }

    fn path3(p: TermId, q: TermId, r: TermId) -> ExplorationQuery {
        ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
                TriplePattern::new(Var(2), r, Var(3)),
            ],
            Var(3),
            Var(2),
            false,
        )
        .unwrap()
    }

    #[test]
    fn count_matches_lftj() {
        let (ig, p, q, r) = diamond();
        let query = path3(p, q, r);
        assert_eq!(ctj_count(&ig, &query).unwrap(), 2);
        assert_eq!(crate::lftj::lftj_count(&ig, &query).unwrap(), 2);
    }

    #[test]
    fn cache_hits_on_diamond() {
        let (ig, p, q, r) = diamond();
        let query = path3(p, q, r);
        let plan = WalkPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut counter = CtjCounter::new(&ig, plan);
        let mut asg = vec![0u32; query.var_count()];
        assert_eq!(counter.count_from(0, &mut asg), 2);
        // The two paths meet at m — the suffix count under m is computed
        // once and hit once.
        assert!(counter.cache_stats().hits >= 1, "stats: {:?}", counter.cache_stats());
        // A second full evaluation is answered entirely from the cache.
        let h0 = counter.cache_stats().hits;
        assert_eq!(counter.count_from(0, &mut asg), 2);
        assert!(counter.cache_stats().hits > h0);
    }

    #[test]
    fn step_stats_localise_cache_traffic() {
        let (ig, p, q, r) = diamond();
        let query = path3(p, q, r);
        let plan = WalkPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut counter = CtjCounter::new(&ig, plan);
        let mut asg = vec![0u32; query.var_count()];
        assert_eq!(counter.count_from(0, &mut asg), 2);
        let steps = counter.step_stats().to_vec();
        assert_eq!(steps.len(), 3);
        // Per-step counters sum to the global aggregate.
        let global = counter.cache_stats();
        assert_eq!(steps.iter().map(|s| s.hits).sum::<u64>(), global.hits);
        assert_eq!(steps.iter().map(|s| s.misses).sum::<u64>(), global.misses);
        // The diamond's reconvergence (both x and y lead to m) shows up
        // as a hit on the suffix *after* the meeting step, not step 0.
        assert_eq!(steps[0].hits, 0, "{steps:?}");
        assert!(steps[1].hits + steps[2].hits >= 1, "{steps:?}");
        // Rows were enumerated wherever suffixes were computed.
        assert!(steps.iter().map(|s| s.rows).sum::<u64>() > 0, "{steps:?}");
        counter.clear_cache();
        assert!(counter.step_stats().iter().all(|s| *s == StepCacheStats::default()));
    }

    #[test]
    fn exists_from_early_exits() {
        let (ig, p, q, r) = diamond();
        let query = path3(p, q, r);
        let plan = WalkPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut counter = CtjCounter::new(&ig, plan);
        let mut asg = vec![0u32; query.var_count()];
        assert!(counter.exists_from(0, &mut asg));
        // Suffix from a binding that cannot reach: bind v2 to a node with
        // no r-edge (x).
        let x = ig.dict().lookup_iri("u:x").unwrap().raw();
        asg[2] = x;
        assert!(!counter.exists_from(2, &mut asg));
    }

    #[test]
    fn mass_from_full_query_equals_success_probability() {
        let (ig, p, q, r) = diamond();
        let query = path3(p, q, r);
        let plan = WalkPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut counter = CtjCounter::new(&ig, plan);
        let mut asg = vec![0u32; query.var_count()];
        // Every walk from the two p-triples succeeds (both x and y reach m,
        // m reaches z): success probability is 1.
        let mass = counter.mass_from(0, &mut asg);
        assert!((mass - 1.0).abs() < 1e-12, "mass = {mass}");
    }

    #[test]
    fn mass_reflects_dead_ends() {
        // a -p-> x, a -p-> y, but only x -q-> m: success prob = 1/2.
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let a = b.dict_mut().intern_iri("u:a");
        let x = b.dict_mut().intern_iri("u:x");
        let y = b.dict_mut().intern_iri("u:y");
        let m = b.dict_mut().intern_iri("u:m");
        for t in [Triple::new(a, p, x), Triple::new(a, p, y), Triple::new(x, q, m)] {
            b.add(t);
        }
        let ig = IndexedGraph::build(b.build());
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            false,
        )
        .unwrap();
        let plan = WalkPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut counter = CtjCounter::new(&ig, plan);
        let mut asg = vec![0u32; query.var_count()];
        let mass = counter.mass_from(0, &mut asg);
        assert!((mass - 0.5).abs() < 1e-12, "mass = {mass}");
    }

    #[test]
    fn clear_cache_resets() {
        let (ig, p, q, r) = diamond();
        let query = path3(p, q, r);
        let plan = WalkPlan::canonical(&query, &kgoa_index::IndexOrder::PAPER_DEFAULT).unwrap();
        let mut counter = CtjCounter::new(&ig, plan);
        let mut asg = vec![0u32; query.var_count()];
        counter.count_from(0, &mut asg);
        counter.clear_cache();
        assert_eq!(counter.cache_stats(), CacheStats::default());
    }
}
