//! Engine errors.

use std::fmt;

use kgoa_query::QueryError;

use crate::budget::BudgetExceeded;

/// Errors raised by the exact engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query failed validation or planning.
    Query(QueryError),
    /// The baseline engine exceeded its intermediate-result budget (the
    /// very failure mode that motivates worst-case-optimal joins).
    IntermediateResultLimit {
        /// The configured tuple budget.
        limit: usize,
    },
    /// The engine does not support the query shape (e.g. Yannakakis
    /// distinct counting requires α and β to co-occur in a pattern).
    Unsupported(&'static str),
    /// A cooperative budget checkpoint tripped (deadline, cancellation,
    /// or a resource cap); the supervisor degrades to online aggregation.
    BudgetExceeded(BudgetExceeded),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::IntermediateResultLimit { limit } => {
                write!(f, "intermediate result exceeded the {limit}-tuple budget")
            }
            EngineError::Unsupported(what) => write!(f, "unsupported query shape: {what}"),
            EngineError::BudgetExceeded(b) => write!(f, "budget exceeded: {b}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            EngineError::BudgetExceeded(b) => Some(b),
            _ => None,
        }
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<BudgetExceeded> for EngineError {
    fn from(b: BudgetExceeded) -> Self {
        EngineError::BudgetExceeded(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::from(QueryError::Empty);
        assert!(e.to_string().contains("query error"));
        assert!(e.source().is_some());
        let l = EngineError::IntermediateResultLimit { limit: 10 };
        assert!(l.to_string().contains("10-tuple"));
        assert!(l.source().is_none());
    }
}
