//! The common exact-engine interface and its four implementations.

use kgoa_index::{FxHashSet, IndexOrder, IndexedGraph};
use kgoa_query::{ExplorationQuery, JoinPlan, WalkPlan};

use crate::baseline::{baseline_grouped_governed, DEFAULT_TUPLE_LIMIT};
use crate::budget::{BudgetExceeded, BudgetMeter, ExecBudget};
use crate::ctj::CtjCounter;
use crate::error::EngineError;
use crate::lftj::LftjExec;
use crate::result::GroupedCounts;
use crate::yannakakis::yannakakis_grouped_distinct_governed;

/// An engine that evaluates exploration queries exactly.
pub trait CountEngine {
    /// A short name for reports ("ctj", "lftj", ...).
    fn name(&self) -> &'static str;

    /// Evaluate the query: per group α, the (distinct) count of β.
    fn evaluate(
        &self,
        ig: &IndexedGraph,
        query: &ExplorationQuery,
    ) -> Result<GroupedCounts, EngineError> {
        self.evaluate_governed(ig, query, &ExecBudget::unlimited())
    }

    /// Evaluate under a cooperative [`ExecBudget`]: the engine checkpoints
    /// its hot loops and returns [`EngineError::BudgetExceeded`] when the
    /// deadline passes, the budget is cancelled, or a resource cap trips.
    /// Never returns a partial `GroupedCounts`.
    fn evaluate_governed(
        &self,
        ig: &IndexedGraph,
        query: &ExplorationQuery,
        budget: &ExecBudget,
    ) -> Result<GroupedCounts, EngineError>;
}

/// Pure LeapFrog Trie Join: worst-case-optimal, no caching.
#[derive(Debug, Clone, Copy, Default)]
pub struct LftjEngine;

impl CountEngine for LftjEngine {
    fn name(&self) -> &'static str {
        "lftj"
    }

    fn evaluate_governed(
        &self,
        ig: &IndexedGraph,
        query: &ExplorationQuery,
        budget: &ExecBudget,
    ) -> Result<GroupedCounts, EngineError> {
        let plan = JoinPlan::canonical(query, &IndexOrder::PAPER_DEFAULT)?;
        let mut exec = LftjExec::new(ig, query, plan)?;
        let alpha = query.alpha().index();
        let beta = query.beta().index();
        let mut out = GroupedCounts::new();
        if query.distinct() {
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            exec.run_governed(budget, |asg| {
                if seen.insert(kgoa_index::pack2(asg[alpha], asg[beta])) {
                    out.add(asg[alpha], 1);
                }
            })?;
        } else {
            exec.run_governed(budget, |asg| out.add(asg[alpha], 1))?;
        }
        Ok(out)
    }
}

/// Cached Trie Join: the paper's exact engine of choice (§IV-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct CtjEngine;

impl CountEngine for CtjEngine {
    fn name(&self) -> &'static str {
        "ctj"
    }

    fn evaluate_governed(
        &self,
        ig: &IndexedGraph,
        query: &ExplorationQuery,
        budget: &ExecBudget,
    ) -> Result<GroupedCounts, EngineError> {
        let _span = kgoa_obs::Span::timed(&kgoa_obs::metrics::CTJ_EVAL_NS);
        let plan = WalkPlan::canonical(query, &IndexOrder::PAPER_DEFAULT)?;
        let mut counter = CtjCounter::new(ig, plan);
        let mut assignment = vec![0u32; query.var_count()];
        let mut out = GroupedCounts::new();
        let mut meter = budget.meter();
        if query.distinct() {
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            let mut dedup = DedupState::new(query, &counter);
            ctj_distinct_rec(
                query,
                &mut counter,
                0,
                &mut assignment,
                &mut seen,
                &mut out,
                &mut meter,
                &mut dedup,
            )?;
        } else {
            ctj_count_rec(query, &mut counter, 0, &mut assignment, &mut out, &mut meter, 1)?;
        }
        counter.profile_emit();
        Ok(out)
    }
}

/// For each step of the distinct driver, the variables (as assignment
/// indices) that the remaining computation after the step reads: the
/// suffix dependency set plus α/β when already bound. Two subtrees rooted
/// at the same step with equal values for these variables insert the same
/// (α, β) pairs, so the second one can be skipped ([`ctj_distinct_rec`]).
/// `None` disables the dedup at a step (key too wide for a `u128`).
pub(crate) fn distinct_skip_vars(
    query: &ExplorationQuery,
    counter: &CtjCounter,
) -> Vec<Option<Vec<usize>>> {
    let plan = counter.plan();
    (0..plan.len())
        .map(|step| {
            let mut vars: Vec<usize> =
                counter.suffix_dep_vars(step + 1).iter().map(|v| v.index()).collect();
            for g in [query.alpha(), query.beta()] {
                if plan.binder_step(g) <= step && !vars.contains(&g.index()) {
                    vars.push(g.index());
                }
            }
            // At the final step the key degenerates to (α, β), which the
            // driver's `seen` set already dedups — disable the extra map.
            (vars.len() <= 4 && step + 1 < plan.len()).then_some(vars)
        })
        .collect()
}

/// Fold up to four bound values into one dedup key.
#[inline]
fn skip_key(vars: &[usize], assignment: &[u32]) -> u128 {
    let mut key = 0u128;
    for (i, v) in vars.iter().enumerate() {
        key |= u128::from(assignment[*v]) << (32 * i);
    }
    key
}

/// Per-step subtree dedup for the distinct driver. A key is inserted
/// *before* recursing — safe because a budget abort discards the whole
/// evaluation, never resumes it — so each fresh subtree costs one hash.
/// Steps where the key never repeats (e.g. a unique-per-row join column)
/// turn their dedup off after a probation window: the map would only burn
/// memory and a lookup per row.
pub(crate) struct DedupState {
    vars: Vec<Option<Vec<usize>>>,
    done: Vec<FxHashSet<u128>>,
    hits: Vec<u64>,
}

/// Re-examine a step's dedup hit rate every this many fresh keys.
const DEDUP_PROBATION: usize = 8192;

impl DedupState {
    pub(crate) fn new(query: &ExplorationQuery, counter: &CtjCounter) -> Self {
        let vars = distinct_skip_vars(query, counter);
        let n = vars.len();
        DedupState { vars, done: vec![FxHashSet::default(); n], hits: vec![0; n] }
    }

    /// True ⇒ an identical subtree already ran at this step; skip it.
    #[inline]
    pub(crate) fn is_duplicate(&mut self, step: usize, assignment: &[u32]) -> bool {
        let Some(vars) = &self.vars[step] else { return false };
        let key = skip_key(vars, assignment);
        if self.done[step].insert(key) {
            let n = self.done[step].len();
            if n.is_multiple_of(DEDUP_PROBATION) && self.hits[step] < (n as u64) / 32 {
                // Under ~3% of subtrees repeated: not worth the hashing.
                self.vars[step] = None;
                self.done[step] = FxHashSet::default();
            }
            false
        } else {
            self.hits[step] += 1;
            true
        }
    }
}

/// Enumerate until α is bound, then finish each branch with a cached
/// suffix count.
pub(crate) fn ctj_count_rec(
    query: &ExplorationQuery,
    counter: &mut CtjCounter<'_>,
    step: usize,
    assignment: &mut [u32],
    out: &mut GroupedCounts,
    meter: &mut BudgetMeter,
    mult: u64,
) -> Result<(), BudgetExceeded> {
    let plan_len = counter.plan().len();
    let alpha = query.alpha();
    let alpha_bound = counter.plan().binder_step(alpha) < step;
    if alpha_bound || step == plan_len {
        let a = assignment[alpha.index()];
        let c = counter
            .try_count_from(step, assignment, meter)?
            .checked_mul(mult)
            .expect("join size overflow");
        if c > 0 {
            out.add(a, c);
        }
        return Ok(());
    }
    let s = &counter.plan().steps()[step];
    let index = counter.graph().require(s.access.order);
    let in_value = s.in_var.map(|(v, _)| assignment[v.index()]);
    let range = s.access.resolve_live(index, in_value);
    if counter.suffix_collapses(step) && !s.out_vars.contains(&alpha) {
        // Nothing after this step (α included) reads its bindings: every
        // row leads to the same recursion, so scale instead of looping.
        if !range.is_empty() {
            meter.tick()?;
            counter.note_row(step);
            let mult = mult.checked_mul(range.len() as u64).expect("join size overflow");
            ctj_count_rec(query, counter, step + 1, assignment, out, meter, mult)?;
        }
        return Ok(());
    }
    if step + 1 == plan_len {
        // Last step: the recursion would hit the trivial base case (suffix
        // count 1) per row — inline it to skip the call overhead.
        let a_idx = alpha.index();
        for pos in index.positions(range) {
            meter.tick()?;
            counter.note_row(step);
            counter.plan().extract_at(index, step, pos, assignment);
            out.add(assignment[a_idx], mult);
        }
        return Ok(());
    }
    for pos in index.positions(range) {
        meter.tick()?;
        counter.note_row(step);
        counter.plan().extract_at(index, step, pos, assignment);
        ctj_count_rec(query, counter, step + 1, assignment, out, meter, mult)?;
    }
    Ok(())
}

/// Enumerate until both α and β are bound, then a cached existence check
/// decides whether the pair contributes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ctj_distinct_rec(
    query: &ExplorationQuery,
    counter: &mut CtjCounter<'_>,
    step: usize,
    assignment: &mut [u32],
    seen: &mut FxHashSet<u64>,
    out: &mut GroupedCounts,
    meter: &mut BudgetMeter,
    dedup: &mut DedupState,
) -> Result<(), BudgetExceeded> {
    let alpha = query.alpha();
    let beta = query.beta();
    let both_bound = counter.plan().binder_step(alpha) < step
        && counter.plan().binder_step(beta) < step;
    if both_bound {
        let a = assignment[alpha.index()];
        let b = assignment[beta.index()];
        if counter.try_exists_from(step, assignment, meter)? && seen.insert(kgoa_index::pack2(a, b))
        {
            out.add(a, 1);
        }
        return Ok(());
    }
    debug_assert!(step < counter.plan().len(), "all vars bound at plan end");
    let s = &counter.plan().steps()[step];
    let index = counter.graph().require(s.access.order);
    let in_value = s.in_var.map(|(v, _)| assignment[v.index()]);
    let range = s.access.resolve_live(index, in_value);
    if counter.suffix_collapses(step)
        && !s.out_vars.contains(&alpha)
        && !s.out_vars.contains(&beta)
    {
        // Neither α/β nor any later step reads this step's bindings, so
        // every row reaches the same set of (α, β) pairs: recurse once.
        if !range.is_empty() {
            meter.tick()?;
            counter.note_row(step);
            ctj_distinct_rec(query, counter, step + 1, assignment, seen, out, meter, dedup)?;
        }
        return Ok(());
    }
    if step + 1 == counter.plan().len() {
        // Last step: all variables are bound after it and the suffix
        // existence check is trivially true — inline the base case.
        let (a_idx, b_idx) = (alpha.index(), beta.index());
        for pos in index.positions(range) {
            meter.tick()?;
            counter.note_row(step);
            counter.plan().extract_at(index, step, pos, assignment);
            let (a, b) = (assignment[a_idx], assignment[b_idx]);
            if seen.insert(kgoa_index::pack2(a, b)) {
                out.add(a, 1);
            }
        }
        return Ok(());
    }
    for pos in index.positions(range) {
        meter.tick()?;
        counter.note_row(step);
        counter.plan().extract_at(index, step, pos, assignment);
        // Two subtrees that agree on the suffix deps plus any bound α/β
        // insert the same (α, β) pairs — skip the repeat.
        if dedup.is_duplicate(step, assignment) {
            continue;
        }
        ctj_distinct_rec(query, counter, step + 1, assignment, seen, out, meter, dedup)?;
    }
    Ok(())
}

/// The conventional materializing engine (Virtuoso stand-in, see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct BaselineEngine {
    /// Intermediate-tuple budget.
    pub tuple_limit: usize,
}

impl Default for BaselineEngine {
    fn default() -> Self {
        BaselineEngine { tuple_limit: DEFAULT_TUPLE_LIMIT }
    }
}

impl CountEngine for BaselineEngine {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn evaluate_governed(
        &self,
        ig: &IndexedGraph,
        query: &ExplorationQuery,
        budget: &ExecBudget,
    ) -> Result<GroupedCounts, EngineError> {
        baseline_grouped_governed(ig, query, self.tuple_limit, budget)
    }
}

/// Semi-join (Yannakakis) engine — the harness's ground truth. Falls back
/// to CTJ when α and β do not co-occur in one pattern.
#[derive(Debug, Clone, Copy, Default)]
pub struct YannakakisEngine;

impl CountEngine for YannakakisEngine {
    fn name(&self) -> &'static str {
        "yannakakis"
    }

    fn evaluate_governed(
        &self,
        ig: &IndexedGraph,
        query: &ExplorationQuery,
        budget: &ExecBudget,
    ) -> Result<GroupedCounts, EngineError> {
        match yannakakis_grouped_distinct_governed(ig, query, budget) {
            Err(EngineError::Unsupported(_)) => CtjEngine.evaluate_governed(ig, query, budget),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgoa_query::{TriplePattern, Var};
    use kgoa_rdf::{GraphBuilder, TermId, Triple};

    /// a -p-> {x,y,z}; x,y -q-> c1; z -q-> c2; also b -p-> x
    /// (so x is reachable twice → distinct matters).
    fn graph() -> (IndexedGraph, TermId, TermId) {
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let n = |b: &mut GraphBuilder, s: &str| b.dict_mut().intern_iri(format!("u:{s}"));
        let a = n(&mut b, "a");
        let bb = n(&mut b, "b");
        let x = n(&mut b, "x");
        let y = n(&mut b, "y");
        let z = n(&mut b, "z");
        let c1 = n(&mut b, "c1");
        let c2 = n(&mut b, "c2");
        for t in [
            Triple::new(a, p, x),
            Triple::new(a, p, y),
            Triple::new(a, p, z),
            Triple::new(bb, p, x),
            Triple::new(x, q, c1),
            Triple::new(y, q, c1),
            Triple::new(z, q, c2),
        ] {
            b.add(t);
        }
        (IndexedGraph::build(b.build()), p, q)
    }

    fn query(p: TermId, q: TermId, distinct: bool) -> ExplorationQuery {
        ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            distinct,
        )
        .unwrap()
    }

    fn all_engines() -> Vec<Box<dyn CountEngine>> {
        vec![
            Box::new(LftjEngine),
            Box::new(CtjEngine),
            Box::new(BaselineEngine::default()),
            Box::new(YannakakisEngine),
        ]
    }

    #[test]
    fn engines_agree_on_distinct() {
        let (ig, p, q) = graph();
        let c1 = ig.dict().lookup_iri("u:c1").unwrap();
        let c2 = ig.dict().lookup_iri("u:c2").unwrap();
        for e in all_engines() {
            let out = e.evaluate(&ig, &query(p, q, true)).unwrap();
            assert_eq!(out.get(c1), 2, "engine {}", e.name());
            assert_eq!(out.get(c2), 1, "engine {}", e.name());
            assert_eq!(out.len(), 2, "engine {}", e.name());
        }
    }

    #[test]
    fn engines_agree_on_non_distinct() {
        let (ig, p, q) = graph();
        let c1 = ig.dict().lookup_iri("u:c1").unwrap();
        for e in all_engines() {
            let out = e.evaluate(&ig, &query(p, q, false)).unwrap();
            // Paths into c1: a->x, a->y, b->x = 3.
            assert_eq!(out.get(c1), 3, "engine {}", e.name());
        }
    }

    #[test]
    fn engines_agree_on_empty() {
        let (ig, p, _) = graph();
        for e in all_engines() {
            let out = e.evaluate(&ig, &query(p, TermId(9999), true)).unwrap();
            assert!(out.is_empty(), "engine {}", e.name());
        }
    }

    #[test]
    fn engines_agree_with_heads_in_different_patterns() {
        let (ig, p, q) = graph();
        // α = source subject (?0), β = final object (?2): not co-occurring.
        let query = ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(0),
            Var(2),
            true,
        )
        .unwrap();
        let a = ig.dict().lookup_iri("u:a").unwrap();
        let bb = ig.dict().lookup_iri("u:b").unwrap();
        for e in all_engines() {
            let out = e.evaluate(&ig, &query).unwrap();
            assert_eq!(out.get(a), 2, "engine {}: a reaches c1, c2", e.name());
            assert_eq!(out.get(bb), 1, "engine {}: b reaches c1", e.name());
        }
    }
}
