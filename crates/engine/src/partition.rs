//! Partitioned exact evaluation: split a join over the first variable's
//! key range and evaluate the slices independently, so the supervisor's
//! exact rungs scale with cores.
//!
//! Both engines partition on the *first* binding of the plan:
//!
//! - **CTJ** enumerates step 0's row range (the first walk step has no
//!   in-binding, so the range is a single contiguous slice of the CSR
//!   level-0 column); [`ctj_count_partition`] restricts the enumeration to
//!   one contiguous chunk of that range. Every full assignment extends
//!   exactly one step-0 row, so per-partition group counts merge by
//!   addition ([`merge_counts`]).
//! - **LFTJ** intersects cursors on the first plan variable;
//!   [`lftj_rank0_keys`] harvests that intersection cheaply (rank-0
//!   leapfrog only) and [`key_windows`] splits the ascending key list into
//!   contiguous inclusive windows that [`lftj_count_partition`] enforces
//!   during the rank-0 leapfrog.
//!
//! Distinct counts cannot add across partitions — the same (α, β) pair can
//! be witnessed from several partitions — so the distinct flavours return
//! the raw *pair sets* and [`merge_distinct_pairs`] counts over their
//! union. The union is idempotent, which also makes the step-0
//! suffix-collapse shortcut safe: when every step-0 row reaches the same
//! pair set, each partition reports that same set and the union collapses
//! the duplication.
//!
//! Each partition owns its engine state (CTJ memo caches are not shared),
//! so partitions are embarrassingly parallel; thread orchestration lives
//! in `kgoa-core::partitioned`, which runs these functions on the
//! persistent worker pool.

use std::sync::Arc;

use kgoa_index::{pack2, FxHashSet, IndexOrder, IndexedGraph};
use kgoa_query::{ExplorationQuery, JoinPlan, WalkPlan};

use crate::budget::ExecBudget;
use crate::ctj::CtjCounter;
use crate::engines::{ctj_count_rec, ctj_distinct_rec, DedupState};
use crate::error::EngineError;
use crate::lftj::LftjExec;
use crate::result::GroupedCounts;

/// Bounds of chunk `part` when `len` items are split into `parts`
/// near-equal contiguous chunks (half-open, sizes differ by at most one).
pub fn chunk_bounds(len: usize, part: usize, parts: usize) -> (usize, usize) {
    let parts = parts.max(1);
    let part = part.min(parts - 1);
    (len * part / parts, len * (part + 1) / parts)
}

/// Inclusive key windows covering `keys` (ascending) in at most `parts`
/// contiguous chunks. Fewer windows come back when there are fewer keys
/// than partitions; no window is empty.
pub fn key_windows(keys: &[u32], parts: usize) -> Vec<(u32, u32)> {
    if keys.is_empty() {
        return Vec::new();
    }
    let parts = parts.clamp(1, keys.len());
    (0..parts)
        .filter_map(|part| {
            let (lo, hi) = chunk_bounds(keys.len(), part, parts);
            (lo < hi).then(|| (keys[lo], keys[hi - 1]))
        })
        .collect()
}

/// One partition of a CTJ grouped count: the step-0 enumeration restricted
/// to chunk `part` of `parts` over the first step's row range. The plan is
/// shared ([`Arc`]) but each partition owns its counter (memo caches).
pub fn ctj_count_partition(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    plan: Arc<WalkPlan>,
    part: usize,
    parts: usize,
    budget: &ExecBudget,
) -> Result<GroupedCounts, EngineError> {
    let mut counter = CtjCounter::new(ig, plan);
    let mut assignment = vec![0u32; query.var_count()];
    let mut out = GroupedCounts::new();
    let mut meter = budget.meter();
    let alpha = query.alpha();
    let plan_len = counter.plan().len();
    let s = &counter.plan().steps()[0];
    let index = counter.graph().require(s.access.order);
    let range = s.access.resolve_live(index, None);
    let alpha_in_step0 = s.out_vars.contains(&alpha);
    // Chunk the *live* position sequence: `positions_from` seeks to the
    // `lo`-th live row by rank-select instead of scanning the skipped
    // prefix, so per-partition startup stays O(log |tomb|).
    let (lo, hi) = chunk_bounds(range.len(), part, parts);
    if lo >= hi {
        return Ok(out);
    }
    if counter.suffix_collapses(0) && !alpha_in_step0 {
        // Same shortcut as the sequential driver: every step-0 row leads
        // to an identical suffix, so this slice scales by its own length.
        meter.tick()?;
        counter.note_row(0);
        let mult = (hi - lo) as u64;
        ctj_count_rec(query, &mut counter, 1, &mut assignment, &mut out, &mut meter, mult)?;
        return Ok(out);
    }
    if plan_len == 1 {
        let a_idx = alpha.index();
        for pos in index.positions_from(range, lo as u32).take(hi - lo) {
            meter.tick()?;
            counter.note_row(0);
            counter.plan().extract_at(index, 0, pos, &mut assignment);
            out.add(assignment[a_idx], 1);
        }
        return Ok(out);
    }
    for pos in index.positions_from(range, lo as u32).take(hi - lo) {
        meter.tick()?;
        counter.note_row(0);
        counter.plan().extract_at(index, 0, pos, &mut assignment);
        ctj_count_rec(query, &mut counter, 1, &mut assignment, &mut out, &mut meter, 1)?;
    }
    Ok(out)
}

/// One partition of a distinct CTJ count: returns the (α, β) pairs this
/// slice witnesses (packed with [`pack2`], α in the high half). Merge with
/// [`merge_distinct_pairs`].
pub fn ctj_distinct_partition(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    plan: Arc<WalkPlan>,
    part: usize,
    parts: usize,
    budget: &ExecBudget,
) -> Result<FxHashSet<u64>, EngineError> {
    let mut counter = CtjCounter::new(ig, plan);
    let mut assignment = vec![0u32; query.var_count()];
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut out = GroupedCounts::new();
    let mut dedup = DedupState::new(query, &counter);
    let mut meter = budget.meter();
    let (alpha, beta) = (query.alpha(), query.beta());
    let plan_len = counter.plan().len();
    let s = &counter.plan().steps()[0];
    let index = counter.graph().require(s.access.order);
    let range = s.access.resolve_live(index, None);
    let heads_in_step0 = s.out_vars.contains(&alpha) || s.out_vars.contains(&beta);
    let (lo, hi) = chunk_bounds(range.len(), part, parts);
    if lo >= hi {
        return Ok(seen);
    }
    if counter.suffix_collapses(0) && !heads_in_step0 {
        // Every step-0 row reaches the same pair set; each partition
        // reports it and the caller's union collapses the duplication.
        meter.tick()?;
        counter.note_row(0);
        ctj_distinct_rec(
            query,
            &mut counter,
            1,
            &mut assignment,
            &mut seen,
            &mut out,
            &mut meter,
            &mut dedup,
        )?;
        return Ok(seen);
    }
    if plan_len == 1 {
        let (a_idx, b_idx) = (alpha.index(), beta.index());
        for pos in index.positions_from(range, lo as u32).take(hi - lo) {
            meter.tick()?;
            counter.note_row(0);
            counter.plan().extract_at(index, 0, pos, &mut assignment);
            seen.insert(pack2(assignment[a_idx], assignment[b_idx]));
        }
        return Ok(seen);
    }
    for pos in index.positions_from(range, lo as u32).take(hi - lo) {
        meter.tick()?;
        counter.note_row(0);
        counter.plan().extract_at(index, 0, pos, &mut assignment);
        if dedup.is_duplicate(0, &assignment) {
            continue;
        }
        ctj_distinct_rec(
            query,
            &mut counter,
            1,
            &mut assignment,
            &mut seen,
            &mut out,
            &mut meter,
            &mut dedup,
        )?;
    }
    Ok(seen)
}

/// The first plan variable's surviving keys for `query` — the LFTJ
/// partition domain (ascending). A cheap pre-pass: rank-0 leapfrog only.
pub fn lftj_rank0_keys(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    budget: &ExecBudget,
) -> Result<Vec<u32>, EngineError> {
    let plan = JoinPlan::canonical(query, &IndexOrder::PAPER_DEFAULT)?;
    let mut exec = LftjExec::new(ig, query, plan)?;
    Ok(exec.rank0_keys(budget)?)
}

/// One partition of an LFTJ grouped count: a full evaluation with the
/// first plan variable restricted to the inclusive key `window`.
pub fn lftj_count_partition(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    window: (u32, u32),
    budget: &ExecBudget,
) -> Result<GroupedCounts, EngineError> {
    let plan = JoinPlan::canonical(query, &IndexOrder::PAPER_DEFAULT)?;
    let mut exec = LftjExec::new(ig, query, plan)?;
    exec.set_rank0_window(window.0, window.1);
    let alpha = query.alpha().index();
    let mut out = GroupedCounts::new();
    exec.run_governed(budget, |asg| out.add(asg[alpha], 1))?;
    Ok(out)
}

/// One partition of a distinct LFTJ count: the (α, β) pairs witnessed in
/// the window. Merge with [`merge_distinct_pairs`].
pub fn lftj_distinct_partition(
    ig: &IndexedGraph,
    query: &ExplorationQuery,
    window: (u32, u32),
    budget: &ExecBudget,
) -> Result<FxHashSet<u64>, EngineError> {
    let plan = JoinPlan::canonical(query, &IndexOrder::PAPER_DEFAULT)?;
    let mut exec = LftjExec::new(ig, query, plan)?;
    exec.set_rank0_window(window.0, window.1);
    let (a_idx, b_idx) = (query.alpha().index(), query.beta().index());
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    exec.run_governed(budget, |asg| {
        seen.insert(pack2(asg[a_idx], asg[b_idx]));
    })?;
    Ok(seen)
}

/// Merge per-partition grouped counts (non-distinct: disjoint partitions,
/// counts are additive).
pub fn merge_counts(parts: impl IntoIterator<Item = GroupedCounts>) -> GroupedCounts {
    let mut out = GroupedCounts::new();
    for p in parts {
        for (g, c) in p.iter() {
            out.add(g.raw(), c);
        }
    }
    out
}

/// Merge per-partition distinct pair sets: union (dedups pairs witnessed
/// by several partitions), then each unique pair contributes 1 to its α
/// group.
pub fn merge_distinct_pairs(parts: impl IntoIterator<Item = FxHashSet<u64>>) -> GroupedCounts {
    let mut union: FxHashSet<u64> = FxHashSet::default();
    for p in parts {
        union.extend(p);
    }
    let mut out = GroupedCounts::new();
    for k in union {
        out.add((k >> 32) as u32, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{CountEngine, CtjEngine, LftjEngine};
    use kgoa_query::{TriplePattern, Var};
    use kgoa_rdf::{GraphBuilder, TermId, Triple};

    fn graph() -> (IndexedGraph, TermId, TermId) {
        let mut b = GraphBuilder::new();
        let p = b.dict_mut().intern_iri("u:p");
        let q = b.dict_mut().intern_iri("u:q");
        let classes: Vec<TermId> =
            (0..3).map(|i| b.dict_mut().intern_iri(format!("u:c{i}"))).collect();
        for si in 0..25u32 {
            let s = b.dict_mut().intern_iri(format!("u:s{si}"));
            for oi in 0..3u32 {
                let o = b.dict_mut().intern_iri(format!("u:o{}", (si * 2 + oi) % 10));
                b.add(Triple::new(s, p, o));
            }
        }
        for oi in 0..10u32 {
            let o = b.dict_mut().intern_iri(format!("u:o{oi}"));
            b.add(Triple::new(o, q, classes[(oi % 3) as usize]));
        }
        (IndexedGraph::build(b.build()), p, q)
    }

    fn query(p: TermId, q: TermId, distinct: bool) -> ExplorationQuery {
        ExplorationQuery::new(
            vec![
                TriplePattern::new(Var(0), p, Var(1)),
                TriplePattern::new(Var(1), q, Var(2)),
            ],
            Var(2),
            Var(1),
            distinct,
        )
        .unwrap()
    }

    fn assert_same(a: &GroupedCounts, b: &GroupedCounts, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: group cardinality");
        for (g, c) in a.iter() {
            assert_eq!(b.get(g), c, "{what}: group {g:?}");
        }
    }

    #[test]
    fn chunk_bounds_cover_and_are_disjoint() {
        for len in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let mut next = 0usize;
                for part in 0..parts {
                    let (lo, hi) = chunk_bounds(len, part, parts);
                    assert_eq!(lo, next, "len={len} parts={parts} part={part}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn key_windows_cover_all_keys() {
        let keys: Vec<u32> = (0..17).map(|i| i * 3).collect();
        for parts in [1usize, 2, 4, 17, 40] {
            let windows = key_windows(&keys, parts);
            assert!(windows.len() <= parts.min(keys.len()));
            // Windows tile the key list: ascending, disjoint, covering.
            let mut covered = 0usize;
            for (i, (lo, hi)) in windows.iter().enumerate() {
                assert!(lo <= hi);
                if i > 0 {
                    assert!(windows[i - 1].1 < *lo, "windows must be disjoint");
                }
                covered += keys.iter().filter(|k| *lo <= **k && **k <= *hi).count();
            }
            assert_eq!(covered, keys.len(), "parts={parts}");
        }
        assert!(key_windows(&[], 4).is_empty());
    }

    #[test]
    fn partitioned_ctj_count_matches_sequential() {
        let (ig, p, q) = graph();
        let query = query(p, q, false);
        let exact = CtjEngine.evaluate(&ig, &query).unwrap();
        let plan = Arc::new(
            WalkPlan::canonical(&query, &IndexOrder::PAPER_DEFAULT).unwrap(),
        );
        for parts in [1usize, 2, 3, 7] {
            let budget = ExecBudget::unlimited();
            let merged = merge_counts((0..parts).map(|part| {
                ctj_count_partition(&ig, &query, Arc::clone(&plan), part, parts, &budget)
                    .unwrap()
            }));
            assert_same(&exact, &merged, &format!("ctj count, {parts} parts"));
        }
    }

    #[test]
    fn partitioned_ctj_distinct_matches_sequential() {
        let (ig, p, q) = graph();
        let query = query(p, q, true);
        let exact = CtjEngine.evaluate(&ig, &query).unwrap();
        let plan = Arc::new(
            WalkPlan::canonical(&query, &IndexOrder::PAPER_DEFAULT).unwrap(),
        );
        for parts in [1usize, 2, 4] {
            let budget = ExecBudget::unlimited();
            let merged = merge_distinct_pairs((0..parts).map(|part| {
                ctj_distinct_partition(&ig, &query, Arc::clone(&plan), part, parts, &budget)
                    .unwrap()
            }));
            assert_same(&exact, &merged, &format!("ctj distinct, {parts} parts"));
        }
    }

    #[test]
    fn partitioned_lftj_matches_sequential() {
        let (ig, p, q) = graph();
        for distinct in [false, true] {
            let query = query(p, q, distinct);
            let exact = LftjEngine.evaluate(&ig, &query).unwrap();
            let budget = ExecBudget::unlimited();
            let keys = lftj_rank0_keys(&ig, &query, &budget).unwrap();
            assert!(!keys.is_empty());
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys ascend: {keys:?}");
            for parts in [1usize, 2, 4] {
                let windows = key_windows(&keys, parts);
                let merged = if distinct {
                    merge_distinct_pairs(windows.iter().map(|w| {
                        lftj_distinct_partition(&ig, &query, *w, &budget).unwrap()
                    }))
                } else {
                    merge_counts(windows.iter().map(|w| {
                        lftj_count_partition(&ig, &query, *w, &budget).unwrap()
                    }))
                };
                assert_same(
                    &exact,
                    &merged,
                    &format!("lftj distinct={distinct}, {parts} parts"),
                );
            }
        }
    }
}
