//! Generator configuration and the two paper-shaped presets.
//!
//! The paper evaluates on DBpedia v3.6 (432 M triples, 370 k classes, 62 k
//! properties — deep multi-domain hierarchy) and LinkedGeoData 2015-11
//! (1.2 B triples, 1.1 k classes, 33 k properties — shallow, broad, spatial).
//! Those dumps and the 72–194 GB indexes they need are out of scope for a
//! laptop-scale reproduction, so `kgoa-datagen` generates seeded synthetic
//! graphs that preserve the *shape parameters the algorithms are sensitive
//! to*: hierarchy depth/width, Zipf-skewed class and property popularity,
//! per-property domain/range correlation (which creates the selective joins
//! and dead ends that drive rejection rates), and literal-heavy properties.

/// Relative scale of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈ 10 k triples — unit tests.
    Tiny,
    /// ≈ 60 k triples — integration tests.
    Small,
    /// ≈ 400 k triples — local benchmarking.
    Medium,
    /// ≈ 2 M triples — the checked-in benchmark configuration.
    Large,
}

impl Scale {
    /// Approximate number of entities at this scale.
    pub fn entities(self) -> usize {
        match self {
            Scale::Tiny => 1_500,
            Scale::Small => 10_000,
            Scale::Medium => 60_000,
            Scale::Large => 300_000,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone)]
pub struct KgConfig {
    /// Dataset name (used in reports).
    pub name: String,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
    /// Number of classes (excluding `owl:Thing`).
    pub num_classes: usize,
    /// Approximate depth of the class hierarchy; larger values produce a
    /// deeper, DBpedia-like tree; 1–2 produce LGD's shallow forest.
    pub hierarchy_depth: usize,
    /// Number of distinct properties (excluding `rdf:type` etc.).
    pub num_properties: usize,
    /// Number of entities.
    pub num_entities: usize,
    /// Average relation (non-type) edges per entity.
    pub avg_edges_per_entity: f64,
    /// Explicit `rdf:type` triples per entity: uniform in this range.
    pub types_per_entity: (usize, usize),
    /// Zipf exponent for class/property/entity popularity (≈1 for
    /// real-world knowledge graphs).
    pub zipf_exponent: f64,
    /// Fraction of relation edges whose object is a literal.
    pub literal_ratio: f64,
    /// Probability that a relation edge respects its property's
    /// domain/range classes (the rest is uniform noise). Higher values
    /// produce the highly selective multi-step joins of the paper's
    /// exploration workload.
    pub domain_conformance: f64,
}

impl KgConfig {
    /// DBpedia-shaped preset: deep multi-domain hierarchy, many classes
    /// and properties, strong skew.
    pub fn dbpedia_like(scale: Scale) -> Self {
        let entities = scale.entities();
        KgConfig {
            name: format!("dbpedia-like-{scale:?}").to_lowercase(),
            seed: 0xDB9E_D1A0,
            num_classes: (entities / 75).clamp(40, 5_000),
            hierarchy_depth: 6,
            num_properties: (entities / 100).clamp(30, 2_000),
            num_entities: entities,
            avg_edges_per_entity: 5.0,
            types_per_entity: (1, 3),
            zipf_exponent: 1.0,
            literal_ratio: 0.35,
            domain_conformance: 0.85,
        }
    }

    /// LinkedGeoData-shaped preset: shallow broad hierarchy, few classes,
    /// more triples per entity, literal-heavy (coordinates, tags).
    pub fn lgd_like(scale: Scale) -> Self {
        let entities = scale.entities();
        KgConfig {
            name: format!("lgd-like-{scale:?}").to_lowercase(),
            seed: 0x016D_00E0,
            num_classes: (entities / 300).clamp(20, 1_200),
            hierarchy_depth: 2,
            num_properties: (entities / 400).clamp(15, 600),
            num_entities: entities * 2,
            avg_edges_per_entity: 4.0,
            types_per_entity: (1, 2),
            zipf_exponent: 1.1,
            literal_ratio: 0.55,
            domain_conformance: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_shape() {
        let db = KgConfig::dbpedia_like(Scale::Small);
        let lgd = KgConfig::lgd_like(Scale::Small);
        // DBpedia: deeper hierarchy, more classes relative to entities.
        assert!(db.hierarchy_depth > lgd.hierarchy_depth);
        assert!(
            db.num_classes as f64 / db.num_entities as f64
                > lgd.num_classes as f64 / lgd.num_entities as f64
        );
        // LGD: more literal-heavy.
        assert!(lgd.literal_ratio > db.literal_ratio);
    }

    #[test]
    fn scales_are_monotone() {
        assert!(Scale::Tiny.entities() < Scale::Small.entities());
        assert!(Scale::Small.entities() < Scale::Medium.entities());
        assert!(Scale::Medium.entities() < Scale::Large.entities());
    }
}
