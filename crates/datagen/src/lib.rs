//! # kgoa-datagen
//!
//! Seeded synthetic knowledge-graph generators standing in for the paper's
//! evaluation datasets (DBpedia v3.6 and LinkedGeoData 2015-11 — see
//! DESIGN.md §3 for the substitution rationale). The generators reproduce
//! the structural properties the algorithms are sensitive to: hierarchy
//! shape, Zipf-skewed popularity, domain/range correlation, and
//! literal-heavy properties. Real N-Triples dumps can be loaded through
//! `kgoa_rdf::ntriples` instead when available.

#![warn(missing_docs)]

pub mod config;
pub mod generate;
pub mod zipf;

pub use config::{KgConfig, Scale};
pub use generate::{generate, generate_with_info, DatasetInfo};
pub use zipf::Zipf;
