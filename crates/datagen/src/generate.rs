//! The knowledge-graph generator.

use kgoa_rdf::{root_orphan_classes, Graph, GraphBuilder, TermId, Triple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::KgConfig;
use crate::zipf::Zipf;

/// Summary of a generated graph, for Table-I-style reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name from the config.
    pub name: String,
    /// Total triples (including type, subclass and closure triples).
    pub triples: usize,
    /// Number of classes (including the root).
    pub classes: usize,
    /// Number of relation properties (excluding vocabulary predicates).
    pub properties: usize,
    /// Approximate serialized size in bytes (N-Triples).
    pub approx_bytes: usize,
}

/// Generate a graph from a configuration. Deterministic in the config.
pub fn generate(config: &KgConfig) -> Graph {
    generate_with_info(config).0
}

/// Generate a graph and its [`DatasetInfo`].
pub fn generate_with_info(config: &KgConfig) -> (Graph, DatasetInfo) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();
    let vocab = b.vocab();

    // --- Classes: a tree of the requested depth under owl:Thing. ---
    // Class i picks a parent among earlier classes, biased toward recent
    // (deep) ones when hierarchy_depth is large and toward the root when
    // small.
    let classes: Vec<TermId> = (0..config.num_classes)
        .map(|i| b.dict_mut().intern_iri(format!("http://kgoa.dev/class/C{i}")))
        .collect();
    let mut depth_of = vec![0usize; config.num_classes];
    for i in 0..config.num_classes {
        let parent = if i == 0 {
            vocab.owl_thing
        } else {
            // Candidate parent: the root itself or any earlier class;
            // retry until the depth budget allows it. Sampling the root as
            // candidate 0 keeps shallow hierarchies (LGD-like) broad at
            // the top instead of funnelling everything under one class.
            let mut tries = 0;
            loop {
                let j = rng.gen_range(0..=i); // i ⇒ the root
                let new_depth = if j == i { 0 } else { depth_of[j] + 1 };
                if new_depth < config.hierarchy_depth || tries > 8 {
                    depth_of[i] = new_depth.min(config.hierarchy_depth);
                    break if j == i { vocab.owl_thing } else { classes[j] };
                }
                tries += 1;
            }
        };
        b.add(Triple::new(classes[i], vocab.subclass_of, parent));
    }

    // --- Properties with Zipf popularity and a domain/range class. ---
    let properties: Vec<TermId> = (0..config.num_properties)
        .map(|i| b.dict_mut().intern_iri(format!("http://kgoa.dev/prop/p{i}")))
        .collect();
    let class_zipf = Zipf::new(config.num_classes, config.zipf_exponent);
    let prop_domain: Vec<usize> =
        (0..config.num_properties).map(|_| class_zipf.sample(&mut rng)).collect();
    let prop_range: Vec<usize> =
        (0..config.num_properties).map(|_| class_zipf.sample(&mut rng)).collect();

    // --- Entities: primary class buckets + explicit types. ---
    let entities: Vec<TermId> = (0..config.num_entities)
        .map(|i| b.dict_mut().intern_iri(format!("http://kgoa.dev/entity/e{i}")))
        .collect();
    let mut class_bucket: Vec<Vec<u32>> = vec![Vec::new(); config.num_classes];
    let (tmin, tmax) = config.types_per_entity;
    for (ei, e) in entities.iter().enumerate() {
        let primary = class_zipf.sample(&mut rng);
        class_bucket[primary].push(ei as u32);
        b.add(Triple::new(*e, vocab.rdf_type, classes[primary]));
        let extra = rng.gen_range(tmin..=tmax).saturating_sub(1);
        for _ in 0..extra {
            let c = class_zipf.sample(&mut rng);
            b.add(Triple::new(*e, vocab.rdf_type, classes[c]));
        }
    }

    // --- Relation edges. ---
    let prop_zipf = Zipf::new(config.num_properties, config.zipf_exponent);
    let entity_zipf = Zipf::new(config.num_entities, config.zipf_exponent * 0.7);
    let total_edges = (config.num_entities as f64 * config.avg_edges_per_entity) as usize;
    // A modest pool of shared literal values (tags, units, years) plus
    // unique literals (names, coordinates).
    let shared_literals: Vec<TermId> = (0..256)
        .map(|i| b.dict_mut().intern_literal(format!("lit-{i}")))
        .collect();
    let mut unique_literal = 0u64;
    for _ in 0..total_edges {
        let p = prop_zipf.sample(&mut rng);
        // Subject: conforming (from the property's domain bucket) or noise.
        let s = if rng.gen_bool(config.domain_conformance)
            && !class_bucket[prop_domain[p]].is_empty()
        {
            let bucket = &class_bucket[prop_domain[p]];
            entities[bucket[rng.gen_range(0..bucket.len())] as usize]
        } else {
            entities[entity_zipf.sample(&mut rng)]
        };
        // Object: literal or entity (conforming to the range or noise).
        let o = if rng.gen_bool(config.literal_ratio) {
            if rng.gen_bool(0.5) {
                shared_literals[rng.gen_range(0..shared_literals.len())]
            } else if rng.gen_bool(0.5) {
                // Numeric literals (populations, coordinates, years) so
                // SUM/AVG aggregation has something to chew on.
                let v: u32 = rng.gen_range(1..1_000_000);
                b.dict_mut().intern_literal(format!("{v}"))
            } else {
                unique_literal += 1;
                b.dict_mut().intern_literal(format!("val-{unique_literal}"))
            }
        } else if rng.gen_bool(config.domain_conformance)
            && !class_bucket[prop_range[p]].is_empty()
        {
            let bucket = &class_bucket[prop_range[p]];
            entities[bucket[rng.gen_range(0..bucket.len())] as usize]
        } else {
            entities[entity_zipf.sample(&mut rng)]
        };
        b.add(Triple::new(s, properties[p], o));
    }

    // Root orphan classes (per the paper's LGD treatment) and materialize
    // the closure (§IV-A).
    root_orphan_classes(&mut b);
    b.materialize_subclass_closure();
    let graph = b.build();
    let info = DatasetInfo {
        name: config.name.clone(),
        triples: graph.len(),
        classes: config.num_classes + 1,
        properties: config.num_properties,
        approx_bytes: graph.len() * 120,
    };
    kgoa_obs::metrics::DATAGEN_GRAPHS.inc();
    kgoa_obs::metrics::DATAGEN_LAST_TRIPLES.set(graph.len() as i64);
    (graph, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use kgoa_index::IndexedGraph;

    #[test]
    fn generation_is_deterministic() {
        let cfg = KgConfig::dbpedia_like(Scale::Tiny);
        let g1 = generate(&cfg);
        let g2 = generate(&cfg);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.triples(), g2.triples());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = KgConfig::dbpedia_like(Scale::Tiny);
        let g1 = generate(&cfg);
        cfg.seed += 1;
        let g2 = generate(&cfg);
        assert_ne!(g1.triples(), g2.triples());
    }

    #[test]
    fn every_entity_has_a_type() {
        let cfg = KgConfig::dbpedia_like(Scale::Tiny);
        let g = generate(&cfg);
        let vocab = g.vocab();
        let typed: std::collections::HashSet<_> = g
            .triples()
            .iter()
            .filter(|t| t.p == vocab.rdf_type)
            .map(|t| t.s)
            .collect();
        for i in 0..cfg.num_entities {
            let e = g.dict().lookup_iri(&format!("http://kgoa.dev/entity/e{i}")).unwrap();
            assert!(typed.contains(&e), "entity e{i} untyped");
        }
    }

    #[test]
    fn closure_is_materialized_and_rooted() {
        let cfg = KgConfig::lgd_like(Scale::Tiny);
        let g = generate(&cfg);
        let vocab = g.vocab();
        // Every class reaches owl:Thing through the closure.
        let c0 = g.dict().lookup_iri("http://kgoa.dev/class/C0").unwrap();
        assert!(g.contains(Triple::new(c0, vocab.subclass_of_trans, vocab.owl_thing)));
        // Reflexive pairs exist.
        assert!(g.contains(Triple::new(c0, vocab.subclass_of_trans, c0)));
    }

    #[test]
    fn info_matches_graph() {
        let cfg = KgConfig::dbpedia_like(Scale::Tiny);
        let (g, info) = generate_with_info(&cfg);
        assert_eq!(info.triples, g.len());
        assert!(info.triples > 5_000, "tiny graph still non-trivial: {}", info.triples);
        assert_eq!(info.classes, cfg.num_classes + 1);
    }

    #[test]
    fn indexes_build_over_generated_graph() {
        let cfg = KgConfig::lgd_like(Scale::Tiny);
        let g = generate(&cfg);
        let ig = IndexedGraph::build(g);
        assert!(ig.stats().triples > 0);
        assert!(ig.stats().predicate_count() > cfg.num_properties / 2);
    }

    #[test]
    fn hierarchy_depth_is_respected() {
        let cfg = KgConfig::dbpedia_like(Scale::Tiny);
        let g = generate(&cfg);
        let vocab = g.vocab();
        // Follow parents from every class; depth must not exceed config+1.
        let mut parent = std::collections::HashMap::new();
        for t in g.triples() {
            if t.p == vocab.subclass_of {
                parent.insert(t.s, t.o);
            }
        }
        for (&c, _) in parent.iter() {
            let mut depth = 0;
            let mut cur = c;
            while let Some(&p) = parent.get(&cur) {
                cur = p;
                depth += 1;
                assert!(depth <= cfg.hierarchy_depth + 2, "hierarchy too deep");
            }
        }
    }
}
