//! Zipf-distributed sampling over dense index ranges.
//!
//! Class, property and entity popularity in real knowledge graphs is
//! heavily skewed; a Zipf law with exponent ≈ 1 is the standard model. The
//! sampler precomputes the cumulative distribution and draws by binary
//! search (O(log n) per sample, exact).

use rand::Rng;

/// A Zipf sampler over `0..n`: index `i` has weight `1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `0..n` with exponent `s`. Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of values in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_favours_low_indices() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 10 * counts[50].max(1));
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "counts {counts:?}");
        }
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
