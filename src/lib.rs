//! # kgoa — Knowledge Graph exploration via Online Aggregation
//!
//! A from-scratch Rust implementation of *"Exploration of Knowledge Graphs
//! via Online Aggregation"* (Kalinsky, Hogan, Mishali, Etsion, Kimelfeld;
//! ICDE 2022): the **Audit Join** online-aggregation algorithm together
//! with every substrate it depends on — an RDF store with hybrid
//! hashtable/trie indexes, worst-case-optimal joins (LeapFrog / Cached
//! Trie Join), Wander Join, a visual exploration model, synthetic
//! knowledge-graph generators, and a benchmark harness that regenerates
//! the paper's evaluation.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rdf`] | `kgoa-rdf` | terms, triples, graphs, N-Triples, subclass closure |
//! | [`index`] | `kgoa-index` | trie indexes, cursors, statistics |
//! | [`query`] | `kgoa-query` | exploration queries, walk/join planning |
//! | [`engine`] | `kgoa-engine` | exact engines: LFTJ, CTJ, baseline, Yannakakis |
//! | [`online`] | `kgoa-core` | Wander Join, **Audit Join**, confidence intervals |
//! | [`explore`] | `kgoa-explore` | charts, expansions, sessions, workload generator |
//! | [`datagen`] | `kgoa-datagen` | DBpedia-like / LGD-like synthetic graphs |
//! | [`obs`] | `kgoa-obs` | telemetry: metrics, spans, events, convergence traces |
//!
//! ## Quickstart
//!
//! ```
//! use kgoa::prelude::*;
//!
//! // A small synthetic DBpedia-shaped knowledge graph, fully indexed.
//! let graph = kgoa::datagen::generate(&KgConfig::dbpedia_like(Scale::Tiny));
//! let ig = IndexedGraph::build(graph);
//!
//! // Explore: what are the top-level classes?
//! let mut session = Session::root(&ig);
//! let chart = session.expand(Expansion::Subclass, &CtjEngine).unwrap();
//! assert!(!chart.is_empty());
//!
//! // Online aggregation: estimate the same chart with Audit Join.
//! let query = {
//!     let mut s = Session::root(&ig);
//!     s.expansion_query(Expansion::Subclass).unwrap()
//! };
//! let mut aj = AuditJoin::new(&ig, &query, AuditJoinConfig::default()).unwrap();
//! run_walks(&mut aj, 10_000);
//! let estimates = aj.estimates();
//! assert!(!estimates.is_empty());
//! ```

#![warn(missing_docs)]

/// RDF substrate (re-export of `kgoa-rdf`).
pub use kgoa_rdf as rdf;

/// Index substrate (re-export of `kgoa-index`).
pub use kgoa_index as index;

/// Query model and planning (re-export of `kgoa-query`).
pub use kgoa_query as query;

/// Exact join engines (re-export of `kgoa-engine`).
pub use kgoa_engine as engine;

/// Online aggregation — Wander Join and Audit Join (re-export of `kgoa-core`).
pub use kgoa_core as online;

/// Exploration model (re-export of `kgoa-explore`).
pub use kgoa_explore as explore;

/// Synthetic dataset generators (re-export of `kgoa-datagen`).
pub use kgoa_datagen as datagen;

/// Telemetry: metrics registry, span timers, structured events,
/// convergence traces, JSON snapshots (re-export of `kgoa-obs`).
/// Disabled by default; flip on with `kgoa::obs::set_enabled(true)`.
pub use kgoa_obs as obs;

/// Parallel execution: the persistent worker pool, streaming parallel
/// online aggregation, and partitioned exact joins (a thin facade over
/// `kgoa-core`'s `pool`, `parallel` and `partitioned` modules).
pub mod exec {
    pub use kgoa_core::parallel::{
        run_parallel, run_parallel_streaming, Budget, ParallelAlgo, ParallelError,
        ParallelOutcome, ParallelSnapshot, StreamConfig,
    };
    pub use kgoa_core::partitioned::{partitioned_count, ExactAlgo};
    pub use kgoa_core::pool::{Scope, WorkerPool};
}

/// The most commonly used items in one import.
pub mod prelude {
    pub use kgoa_core::{
        run_governed, run_timed, run_walks, supervise, AuditJoin, AuditJoinConfig, Degraded,
        EpochConfig, EpochGuard, EpochManager, EpochSnapshot, OnlineAggregator,
        SupervisedResult, SupervisorConfig, SupervisorError, WanderJoin,
    };
    pub use kgoa_datagen::{KgConfig, Scale};
    pub use kgoa_engine::{
        BudgetExceeded, BudgetReason, CountEngine, CtjEngine, ExecBudget, GroupedCounts,
        GroupedEstimates, LftjEngine, YannakakisEngine,
    };
    pub use kgoa_explore::{Chart, Expansion, GovernedChart, Session};
    pub use kgoa_index::{IndexOrder, IndexedGraph};
    pub use kgoa_query::{ExplorationQuery, TriplePattern, Var};
    pub use kgoa_rdf::{Graph, GraphBuilder, Term, TermId, Triple};
}
